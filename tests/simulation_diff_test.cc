// Differential and fuzz coverage for the two event engines.
//
// The calendar queue's correctness claim is behavioural equivalence with the
// legacy heap: bit-identical fire order for any schedule/cancel workload.
// These tests drive both engines with identical randomized workloads —
// including nested scheduling, cancels from inside callbacks, chunked
// RunUntil, and adversarial wheel geometries — and require the observed fire
// sequences to match element-for-element. A second group proves the op-log
// record/replay path (sim/replay.h) reproduces a recorded run on either
// engine, which is what bench/cluster_scale's engine comparison rests on.
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "common/rng.h"
#include "sim/replay.h"
#include "sim/simulation.h"

namespace medes {
namespace {

struct WorkloadResult {
  std::vector<uint64_t> fire_sequence;  // event labels in fire order
  uint64_t events_processed = 0;
  SimTime end_time;
};

// A deterministic randomized workload driven purely through the public API.
// Given the same seed it issues the same operation sequence against any
// engine: bursts of schedules (short, medium, and beyond-window delays),
// cancels of random live handles (sometimes twice, sometimes stale), nested
// scheduling and cancelling from inside callbacks, and chunked RunUntil
// progress with fresh schedules between chunks.
WorkloadResult RunWorkload(SimulationOptions opts, uint64_t seed, SimOpLog* log = nullptr) {
  Simulation sim(opts);
  if (log != nullptr) {
    sim.SetOpLog(log);
  }
  Rng rng(seed);
  WorkloadResult out;
  std::vector<EventId> handles;
  uint64_t next_label = 0;

  std::function<void(uint64_t, int)> fire = [&](uint64_t label, int depth) {
    out.fire_sequence.push_back(label);
    // Nested behaviour is derived from the label, not a shared RNG, so it is
    // identical across engines regardless of memory layout.
    Rng local(seed ^ (label * 0x9e3779b97f4a7c15ull));
    if (depth < 3 && local.Bernoulli(0.4)) {
      const int children = static_cast<int>(local.Range(1, 3));
      for (int c = 0; c < children; ++c) {
        const uint64_t child = next_label++;
        const SimDuration delay{local.Range(0, 40'000)};
        handles.push_back(
            sim.ScheduleAfter(delay, [&fire, child, depth] { fire(child, depth + 1); }));
      }
    }
    if (!handles.empty() && local.Bernoulli(0.3)) {
      sim.Cancel(handles[local.Below(handles.size())]);
    }
  };

  SimTime horizon;
  for (int chunk = 0; chunk < 5; ++chunk) {
    for (int i = 0; i < 120; ++i) {
      const uint64_t label = next_label++;
      // Mix of near (in-bucket), mid (in-window), and far (overflow) delays.
      SimDuration delay;
      switch (rng.Below(3)) {
        case 0:
          delay = SimDuration{rng.Range(0, 100)};
          break;
        case 1:
          delay = SimDuration{rng.Range(0, 20'000)};
          break;
        default:
          delay = SimDuration{rng.Range(0, 2'000'000)};
          break;
      }
      handles.push_back(
          sim.Schedule(sim.Now() + delay, [&fire, label] { fire(label, 0); }));
    }
    for (int i = 0; i < 30 && !handles.empty(); ++i) {
      sim.Cancel(handles[rng.Below(handles.size())]);
    }
    horizon += SimDuration{300'000};
    sim.RunUntil(horizon);
  }
  sim.Run();
  out.events_processed = sim.events_processed();
  out.end_time = sim.Now();
  if (log != nullptr) {
    sim.SetOpLog(nullptr);
  }
  return out;
}

SimulationOptions CalendarOpts(int width_log2 = 14, int buckets_log2 = 10) {
  SimulationOptions o;
  o.engine = SimEngine::kCalendar;
  o.bucket_width_log2 = width_log2;
  o.num_buckets_log2 = buckets_log2;
  return o;
}

SimulationOptions HeapOpts() {
  SimulationOptions o;
  o.engine = SimEngine::kHeap;
  return o;
}

TEST(SimulationDiffTest, RandomizedWorkloadsMatchHeap) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const WorkloadResult cal = RunWorkload(CalendarOpts(), seed);
    const WorkloadResult heap = RunWorkload(HeapOpts(), seed);
    ASSERT_EQ(cal.fire_sequence, heap.fire_sequence) << "seed " << seed;
    EXPECT_EQ(cal.events_processed, heap.events_processed) << "seed " << seed;
    EXPECT_EQ(cal.end_time, heap.end_time) << "seed " << seed;
  }
}

// Adversarial geometries: one-bucket wheels, tiny windows (every event
// overflows and migrates), and wide buckets that pile everything into one
// lazily-sorted bucket must all preserve the contract.
TEST(SimulationDiffTest, AdversarialGeometriesMatchHeap) {
  const int geometries[][2] = {{0, 1}, {1, 2}, {4, 1}, {20, 2}, {2, 12}};
  for (const auto& g : geometries) {
    const WorkloadResult cal = RunWorkload(CalendarOpts(g[0], g[1]), 0xfeed);
    const WorkloadResult heap = RunWorkload(HeapOpts(), 0xfeed);
    ASSERT_EQ(cal.fire_sequence, heap.fire_sequence)
        << "geometry width_log2=" << g[0] << " buckets_log2=" << g[1];
    EXPECT_EQ(cal.events_processed, heap.events_processed);
  }
}

// Replay of a recorded op stream must fire the same schedule ordinals in the
// same order on both engines, and match the recorded order exactly.
TEST(SimulationDiffTest, OpLogReplayMatchesRecordedRunOnBothEngines) {
  SimOpLog log;
  const WorkloadResult original = RunWorkload(CalendarOpts(), 0xabc, &log);
  ASSERT_EQ(log.fire_order().size(), original.fire_sequence.size());

  uint64_t recorded_hash = 0;
  for (uint64_t ordinal : log.fire_order()) {
    recorded_hash = FireHashStep(recorded_hash, ordinal);
  }

  const ReplayResult cal = ReplaySimOps(log, CalendarOpts());
  const ReplayResult heap = ReplaySimOps(log, HeapOpts());
  EXPECT_EQ(cal.events_processed, original.events_processed);
  EXPECT_EQ(heap.events_processed, original.events_processed);
  EXPECT_EQ(cal.fire_hash, recorded_hash);
  EXPECT_EQ(heap.fire_hash, recorded_hash);
  EXPECT_EQ(cal.end_time, original.end_time);
  EXPECT_EQ(heap.end_time, original.end_time);
}

// Replaying a heap-recorded log must agree with replaying a calendar-recorded
// log of the same workload (the logs themselves are identical op streams).
TEST(SimulationDiffTest, RecordingEngineDoesNotMatter) {
  SimOpLog cal_log;
  SimOpLog heap_log;
  RunWorkload(CalendarOpts(), 0x5eed, &cal_log);
  RunWorkload(HeapOpts(), 0x5eed, &heap_log);
  ASSERT_EQ(cal_log.ops().size(), heap_log.ops().size());
  ASSERT_EQ(cal_log.fire_order(), heap_log.fire_order());

  const ReplayResult a = ReplaySimOps(cal_log, HeapOpts());
  const ReplayResult b = ReplaySimOps(heap_log, CalendarOpts());
  EXPECT_EQ(a.fire_hash, b.fire_hash);
  EXPECT_EQ(a.events_processed, b.events_processed);
}

}  // namespace
}  // namespace medes
