// Working-set-aware lazy restore: the determinism contract (bit-identical
// final images, eager vs lazy, at any thread count), misprediction fault
// accounting, the degenerate working sets (empty and full-image), and the
// working-set table's serialization round-trip.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dedupagent/dedup_agent.h"
#include "memstate/working_set.h"
#include "workload/access_model.h"

namespace medes {
namespace {

ClusterOptions SmallCluster() {
  ClusterOptions opts;
  opts.num_nodes = 2;
  opts.node_memory_mb = 4096;
  opts.bytes_per_mb = 16384;
  return opts;
}

// A self-contained dedup environment with a configurable agent.
struct Env {
  explicit Env(DedupAgentOptions options = {})
      : cluster(SmallCluster()),
        fabric({}, [this](const PageLocation& loc) { return cluster.ReadBasePage(loc); }),
        agent(cluster, registry, fabric, options) {}

  Sandbox& WarmSandbox(const std::string& name, NodeId node, SimTime now = SimTime{}) {
    Sandbox& sb = cluster.Spawn(ProfileByName(name), node, now);
    cluster.MarkWarm(sb, now);
    return sb;
  }

  // Designates a same-function base and dedups a victim on the other node.
  Sandbox& DedupedVictim(const std::string& name) {
    Sandbox& base = WarmSandbox(name, NodeId{0});
    agent.DesignateBase(base);
    Sandbox& victim = WarmSandbox(name, NodeId{1}, SimTime{1});
    agent.DedupOp(victim, SimTime{2});
    return victim;
  }

  Cluster cluster;
  FingerprintRegistry registry;
  RdmaFabric fabric;
  DedupAgent agent;
};

DedupAgentOptions WithThreads(size_t n, RestoreMode mode = RestoreMode::kLazy) {
  DedupAgentOptions options;
  options.num_threads = n;
  options.restore_mode = mode;
  return options;
}

// Restores a victim to a fully materialized image, driving the background
// phase if the restore deferred pages; returns true when verification (inline
// or deferred digest) succeeded.
bool RestoreFully(Env& env, Sandbox& sb, SimTime now) {
  RestoreOpResult r = env.agent.RestoreOp(sb, now, /*verify=*/true);
  if (r.background_pending) {
    return env.agent.CompleteBackgroundRestore(sb, now + SimDuration{1}).verified;
  }
  return r.verified;
}

// ---- Bit-identical images, eager vs lazy, across thread counts -----------

TEST(LazyRestoreTest, EagerAndLazyProduceIdenticalImagesAcrossThreadCounts) {
  // Every environment is seeded identically, so BuildImage produces the same
  // original bytes in each; verify=true proves each mode reconstructed its
  // image byte-exactly (eager: memcmp, lazy: pinned SHA-1 digest) — so the
  // final memory images are bit-identical between modes and thread counts.
  for (size_t threads : {size_t{1}, size_t{4}, size_t{0}}) {  // 0 = MEDES_THREADS/hw
    Env eager(WithThreads(threads, RestoreMode::kEager));
    Env lazy(WithThreads(threads, RestoreMode::kLazy));
    for (const char* fn : {"Vanilla", "RNNModel"}) {
      Sandbox& ve = eager.DedupedVictim(fn);
      Sandbox& vl = lazy.DedupedVictim(fn);
      ASSERT_EQ(ve.id, vl.id) << "environments diverged";
      // Two cycles: the first trains the lazy working set, the second runs
      // the trained (partial-prefetch) path.
      for (int cycle = 0; cycle < 2; ++cycle) {
        const SimTime now{10 + cycle * 10};
        EXPECT_TRUE(RestoreFully(eager, ve, now)) << fn << " cycle " << cycle;
        EXPECT_TRUE(RestoreFully(lazy, vl, now)) << fn << " cycle " << cycle;
        eager.cluster.MarkRunning(ve, now + SimDuration{2});
        eager.cluster.MarkWarm(ve, now + SimDuration{3});
        lazy.cluster.MarkRunning(vl, now + SimDuration{2});
        lazy.cluster.MarkWarm(vl, now + SimDuration{3});
        ASSERT_EQ(ve.generation, vl.generation);
        eager.agent.DedupOp(ve, now + SimDuration{4});
        lazy.agent.DedupOp(vl, now + SimDuration{4});
      }
      EXPECT_TRUE(RestoreFully(eager, ve, SimTime{100})) << fn;
      EXPECT_TRUE(RestoreFully(lazy, vl, SimTime{100})) << fn;
    }
  }
}

// ---- Trained path: prefetch shrinks, the rest is deferred ----------------

TEST(LazyRestoreTest, TrainedRestoreDefersBackgroundPagesAndSpeedsUpCriticalPath) {
  Env env;
  Sandbox& sb = env.DedupedVictim("LinAlg");
  const size_t num_pages = sb.checkpoint->NumPages();
  RestoreOpResult first = env.agent.RestoreOp(sb, SimTime{10}, /*verify=*/true);
  // Unprofiled: full prefetch, nothing deferred, verified inline.
  EXPECT_EQ(first.ws_predicted_pages, num_pages);
  EXPECT_EQ(first.ws_fault_pages, 0u);
  EXPECT_FALSE(first.background_pending);
  EXPECT_TRUE(first.verified);
  EXPECT_EQ(first.fault_time, SimDuration{});

  env.cluster.MarkRunning(sb, SimTime{11});
  env.cluster.MarkWarm(sb, SimTime{12});
  env.agent.DedupOp(sb, SimTime{13});

  RestoreOpResult second = env.agent.RestoreOp(sb, SimTime{20}, /*verify=*/true);
  EXPECT_EQ(second.mode, RestoreMode::kLazy);
  EXPECT_LT(second.ws_predicted_pages, num_pages) << "trained prediction should be partial";
  EXPECT_GT(second.background_pages, 0u);
  EXPECT_TRUE(second.background_pending);
  EXPECT_EQ(second.ws_touched_pages, second.ws_hit_pages + second.ws_fault_pages);
  EXPECT_LT(second.critical_path_time, first.critical_path_time);
  // Deferred pages keep their base refs until the background phase runs.
  EXPECT_FALSE(sb.patches.empty());
  EXPECT_TRUE(env.agent.HasPendingBackgroundRestore(sb.id));
  BackgroundRestoreResult bg = env.agent.CompleteBackgroundRestore(sb, SimTime{21});
  EXPECT_EQ(bg.pages, second.background_pages);
  EXPECT_TRUE(bg.verified);
  EXPECT_TRUE(sb.patches.empty());
  EXPECT_FALSE(sb.checkpoint.has_value());
  EXPECT_FALSE(env.agent.HasPendingBackgroundRestore(sb.id));

  DedupAgentStats stats = env.agent.stats();
  EXPECT_EQ(stats.lazy_restores, 2u);
  EXPECT_EQ(stats.background_completions, 1u);
  EXPECT_EQ(stats.background_pages, bg.pages);
}

// ---- Misprediction accounting --------------------------------------------

TEST(LazyRestoreTest, MispredictedPagesAreChargedAsFaults) {
  Env env;
  Sandbox& sb = env.DedupedVictim("ImagePro");
  const size_t num_pages = sb.checkpoint->NumPages();
  // Seed a deliberately empty working set: every post-resume touch is a
  // misprediction and must be charged the demand-fault path.
  env.agent.working_sets().Record(sb.function, std::vector<PageIndex>{}, num_pages);

  const std::vector<PageIndex> touched =
      PostResumeAccessTrace(env.cluster.ProfileOf(sb), num_pages, sb.generation + 1);
  ASSERT_FALSE(touched.empty());

  RestoreOpResult r = env.agent.RestoreOp(sb, SimTime{10}, /*verify=*/true);
  EXPECT_EQ(r.ws_predicted_pages, 0u);
  EXPECT_EQ(r.ws_hit_pages, 0u);
  EXPECT_EQ(r.ws_touched_pages, touched.size());
  EXPECT_EQ(r.ws_fault_pages, touched.size());
  EXPECT_GT(r.fault_time, SimDuration{}) << "misprediction must not be free";
  EXPECT_EQ(r.total_time, r.critical_path_time + r.fault_time);
  EXPECT_EQ(env.agent.stats().ws_fault_pages, touched.size());

  ASSERT_TRUE(r.background_pending);
  EXPECT_TRUE(env.agent.CompleteBackgroundRestore(sb, SimTime{11}).verified);
}

// ---- Degenerate working sets ---------------------------------------------

TEST(LazyRestoreTest, FullImageWorkingSetBehavesLikeEagerRestore) {
  Env env;
  Sandbox& sb = env.DedupedVictim("Vanilla");
  const size_t num_pages = sb.checkpoint->NumPages();
  std::vector<PageIndex> all;
  all.reserve(num_pages);
  for (size_t i = 0; i < num_pages; ++i) {
    all.push_back(PageIndex{static_cast<uint32_t>(i)});
  }
  env.agent.working_sets().Record(sb.function, all, num_pages);

  RestoreOpResult r = env.agent.RestoreOp(sb, SimTime{10}, /*verify=*/true);
  EXPECT_EQ(r.ws_predicted_pages, num_pages);
  EXPECT_EQ(r.ws_fault_pages, 0u);
  EXPECT_EQ(r.background_pages, 0u);
  EXPECT_FALSE(r.background_pending);
  EXPECT_TRUE(r.verified) << "nothing deferred: verified inline like eager";
  EXPECT_EQ(r.fault_time, SimDuration{});
  EXPECT_TRUE(sb.patches.empty());
  EXPECT_FALSE(sb.checkpoint.has_value());
}

TEST(LazyRestoreTest, ZeroSizeWorkingSetDefersEverythingUntouched) {
  Env env;
  Sandbox& sb = env.DedupedVictim("AuthEnc");
  const size_t num_pages = sb.checkpoint->NumPages();
  const size_t patched = sb.patches.size();
  env.agent.working_sets().Record(sb.function, std::vector<PageIndex>{}, num_pages);

  RestoreOpResult r = env.agent.RestoreOp(sb, SimTime{10}, /*verify=*/true);
  EXPECT_EQ(r.ws_predicted_pages, 0u);
  EXPECT_EQ(r.ws_hit_pages, 0u);
  // Nothing prefetched: touched-but-patched pages demand-fault, every other
  // patched page is deferred — the sandbox keeps exactly those records.
  EXPECT_LT(r.background_pages, patched) << "touched patched pages fault in eagerly";
  EXPECT_EQ(sb.patches.size(), r.background_pages);
  ASSERT_TRUE(r.background_pending);
  BackgroundRestoreResult bg = env.agent.CompleteBackgroundRestore(sb, SimTime{11});
  EXPECT_EQ(bg.pages, r.background_pages);
  EXPECT_TRUE(bg.verified);
}

// ---- Working-set table serialization -------------------------------------

TEST(LazyRestoreTest, WorkingSetTableSerializationRoundTrips) {
  WorkingSetTable table;
  std::vector<PageIndex> touched_a{PageIndex{1}, PageIndex{5}, PageIndex{9}};
  std::vector<PageIndex> touched_b{PageIndex{0}, PageIndex{5}};
  table.Record(FunctionId{3}, touched_a, 16);
  table.Record(FunctionId{3}, touched_b, 16);
  table.Record(FunctionId{7}, touched_b, 8);

  const std::string bytes = table.Serialize();
  WorkingSetTable restored;
  ASSERT_TRUE(WorkingSetTable::Deserialize(bytes, restored));
  EXPECT_EQ(restored.NumFunctions(), 2u);
  EXPECT_EQ(restored.Observations(FunctionId{3}), 2u);
  EXPECT_EQ(restored.Observations(FunctionId{7}), 1u);
  EXPECT_EQ(restored.Predict(FunctionId{3}, 16), table.Predict(FunctionId{3}, 16));
  EXPECT_EQ(restored.Predict(FunctionId{7}, 8), table.Predict(FunctionId{7}, 8));
  EXPECT_EQ(restored.Predict(FunctionId{4}, 8), std::nullopt) << "unprofiled stays unprofiled";
  // Round-trip is stable: serialize(deserialize(bytes)) == bytes.
  EXPECT_EQ(restored.Serialize(), bytes);
}

TEST(LazyRestoreTest, WorkingSetTableRejectsMalformedBytes) {
  WorkingSetTable table;
  table.Record(FunctionId{1}, std::vector<PageIndex>{PageIndex{2}}, 4);
  const std::string bytes = table.Serialize();

  WorkingSetTable out;
  EXPECT_FALSE(WorkingSetTable::Deserialize("", out));
  EXPECT_FALSE(WorkingSetTable::Deserialize("nonsense", out));
  EXPECT_FALSE(WorkingSetTable::Deserialize(bytes.substr(0, bytes.size() - 1), out))
      << "truncated input";
  EXPECT_FALSE(WorkingSetTable::Deserialize(bytes + "x", out)) << "trailing garbage";
  EXPECT_TRUE(WorkingSetTable::Deserialize(bytes, out)) << "pristine bytes still parse";
}

// A table shared between agents warms predictions across "runs" — the
// campaign-warming use the platform exposes via DedupAgentOptions.
TEST(LazyRestoreTest, SharedWorkingSetTableWarmsSecondAgent) {
  auto shared = std::make_shared<WorkingSetTable>();
  DedupAgentOptions options;
  options.working_sets = shared;

  Env first(options);
  Sandbox& sb1 = first.DedupedVictim("MapReduce");
  RestoreOpResult r1 = first.agent.RestoreOp(sb1, SimTime{10}, /*verify=*/true);
  EXPECT_FALSE(r1.background_pending) << "cold table: full prefetch";

  Env second(options);  // same table: already trained
  Sandbox& sb2 = second.DedupedVictim("MapReduce");
  RestoreOpResult r2 = second.agent.RestoreOp(sb2, SimTime{10}, /*verify=*/true);
  EXPECT_LT(r2.ws_predicted_pages, sb2.checkpoint->NumPages());
  ASSERT_TRUE(r2.background_pending);
  EXPECT_TRUE(second.agent.CompleteBackgroundRestore(sb2, SimTime{11}).verified);
}

}  // namespace
}  // namespace medes
