// Strong domain types: the algebra that must compile, the algebra that must
// not, and the representation guarantees the migration depends on.
//
// Two jobs in one translation unit (same pattern as thread_safety_smoke.cc):
//
//  1. As a regular test, it pins down the behavior of StrongOrdinal /
//     StrongQuantity and the SimTime/SimDuration calculus: construction,
//     comparison, hashing, streaming, sentinels, and the dimension-legal
//     arithmetic being value-identical to raw int64 math.
//
//  2. As a negative-compile check: defining MEDES_TYPES_NEGATIVE_COMPILE adds
//     code that mixes dimensions (Bytes + SimDuration) and swaps ordinal
//     arguments ((NodeId, SandboxId) passed as (SandboxId, NodeId)). Any
//     conforming compiler must REJECT that configuration:
//
//       g++ -std=c++20 -fsyntax-only -Isrc tests/types_test.cc
//       # succeeds; adding -DMEDES_TYPES_NEGATIVE_COMPILE must fail.
//
//     CI runs both directions in the static-analysis job.
#include "common/types.h"

#include <gtest/gtest.h>

#include <functional>
#include <sstream>
#include <type_traits>
#include <unordered_map>
#include <unordered_set>

#include "common/time.h"

namespace medes {
namespace {

// ---- Representation guarantees ------------------------------------------

static_assert(sizeof(NodeId) == sizeof(int32_t));
static_assert(sizeof(SandboxId) == sizeof(uint64_t));
static_assert(sizeof(PageIndex) == sizeof(uint32_t));
static_assert(sizeof(Bytes) == sizeof(uint64_t));
static_assert(sizeof(SimTime) == sizeof(int64_t));
static_assert(sizeof(SimDuration) == sizeof(int64_t));

static_assert(std::is_trivially_copyable_v<NodeId>);
static_assert(std::is_trivially_copyable_v<SandboxId>);
static_assert(std::is_trivially_copyable_v<Bytes>);
static_assert(std::is_trivially_copyable_v<SimTime>);
static_assert(std::is_trivially_copyable_v<SimDuration>);

// Construction is explicit: no silent int -> strong-type conversions.
static_assert(!std::is_convertible_v<int, NodeId>);
static_assert(!std::is_convertible_v<uint64_t, SandboxId>);
static_assert(!std::is_convertible_v<uint64_t, Bytes>);
static_assert(!std::is_convertible_v<int64_t, SimTime>);
static_assert(!std::is_convertible_v<int64_t, SimDuration>);
// ...and distinct tags are distinct types even with the same rep.
static_assert(!std::is_convertible_v<SandboxId, Bytes>);
static_assert(!std::is_convertible_v<SimTime, SimDuration>);

// ---- Ordinals ------------------------------------------------------------

TEST(StrongOrdinalTest, ConstructionAndValue) {
  constexpr NodeId node{3};
  static_assert(node.value() == 3);
  EXPECT_EQ(NodeId{}.value(), 0);
  EXPECT_EQ(kInvalidNode.value(), -1);
  EXPECT_EQ(kNoSandbox, SandboxId{0});
}

TEST(StrongOrdinalTest, ComparisonIsTotalOrder) {
  EXPECT_EQ(SandboxId{7}, SandboxId{7});
  EXPECT_NE(SandboxId{7}, SandboxId{8});
  EXPECT_LT(NodeId{-1}, NodeId{0});
  EXPECT_GT(PageIndex{9}, PageIndex{2});
  EXPECT_LE(NodeId{2}, NodeId{2});
}

TEST(StrongOrdinalTest, IncrementHandsOutSequentialIds) {
  SandboxId id{41};
  EXPECT_EQ((++id).value(), 42u);
  EXPECT_EQ((id++).value(), 42u);  // post-increment returns the old id
  EXPECT_EQ(id.value(), 43u);
}

TEST(StrongOrdinalTest, HashMatchesUnderlyingInteger) {
  // Shard selection (hash % shards) must not change across the migration.
  EXPECT_EQ(std::hash<SandboxId>{}(SandboxId{123}), std::hash<uint64_t>{}(123));
  EXPECT_EQ(std::hash<NodeId>{}(NodeId{5}), std::hash<int32_t>{}(5));
  std::unordered_set<SandboxId> set;
  set.insert(SandboxId{1});
  set.insert(SandboxId{1});
  EXPECT_EQ(set.size(), 1u);
  std::unordered_map<NodeId, int> map;
  map[NodeId{2}] = 7;
  EXPECT_EQ(map.at(NodeId{2}), 7);
}

TEST(StrongOrdinalTest, StreamsAsRawValue) {
  std::ostringstream os;
  os << NodeId{4} << " " << SandboxId{19};
  EXPECT_EQ(os.str(), "4 19");
}

// ---- Quantities ----------------------------------------------------------

TEST(StrongQuantityTest, DimensionLegalArithmetic) {
  constexpr Bytes a{4096};
  constexpr Bytes b{512};
  static_assert((a + b).value() == 4608u);
  static_assert((a - b).value() == 3584u);
  static_assert((a * 3).value() == 12288u);
  static_assert((uint64_t{2} * b).value() == 1024u);
  static_assert((a / 2).value() == 2048u);
  static_assert(a / b == 8u);  // ratio is dimensionless
  Bytes acc{100};
  acc += Bytes{20};
  acc -= Bytes{5};
  EXPECT_EQ(acc, Bytes{115});
}

TEST(StrongQuantityTest, HashAndStream) {
  EXPECT_EQ(std::hash<Bytes>{}(Bytes{77}), std::hash<uint64_t>{}(77));
  std::ostringstream os;
  os << Bytes{4096};
  EXPECT_EQ(os.str(), "4096");
}

// ---- SimTime / SimDuration calculus -------------------------------------

TEST(SimTimeTest, TimeDurationAlgebra) {
  constexpr SimTime t{1'000'000};
  constexpr SimDuration d{250'000};
  static_assert((t + d).value() == 1'250'000);
  static_assert((d + t).value() == 1'250'000);
  static_assert((t - d).value() == 750'000);
  static_assert((t + d) - t == d);  // Time - Time -> Duration
  SimTime now{};
  now += 3 * kSecond;
  now -= kMillisecond;
  EXPECT_EQ(now - SimTime{}, SimDuration{2'999'000});
}

TEST(SimTimeTest, DurationAlgebraMatchesRawInt64) {
  constexpr SimDuration d{90};
  static_assert((d + SimDuration{10}).value() == 100);
  static_assert((d - SimDuration{100}).value() == -10);
  static_assert((-d).value() == -90);
  static_assert((d * 4).value() == 360);
  static_assert((d / 4).value() == 22);  // integer division truncates, as before
  static_assert(d / SimDuration{40} == 2);
  static_assert((d % SimDuration{40}).value() == 10);
}

TEST(SimTimeTest, UnitConstantsAndConversions) {
  EXPECT_EQ(kMillisecond.value(), 1'000);
  EXPECT_EQ(kSecond.value(), 1'000'000);
  EXPECT_EQ(kMinute, 60 * kSecond);
  EXPECT_EQ(kHour, 60 * kMinute);
  EXPECT_DOUBLE_EQ(ToMillis(SimDuration{1'500}), 1.5);
  EXPECT_DOUBLE_EQ(ToSeconds(kMinute), 60.0);
  EXPECT_EQ(FromMillis(2.5), SimDuration{2'500});
  EXPECT_EQ(FromSeconds(0.001), kMillisecond);
}

TEST(SimTimeTest, SentinelAndOrdering) {
  EXPECT_LT(SimTime{}, kSimTimeMax);
  EXPECT_GT(kSimTimeMax, SimTime{1});
  std::ostringstream os;
  os << SimTime{42} << "/" << SimDuration{-7};
  EXPECT_EQ(os.str(), "42/-7");
}

// ---- Negative-compile configuration -------------------------------------
//
// Guarded the same way as tests/thread_safety_smoke.cc: CI's static-analysis
// job compiles this file with -DMEDES_TYPES_NEGATIVE_COMPILE and asserts the
// compiler rejects it. Keeping the ill-formed code in-tree (rather than in
// prose) means the "does not compile" claims above stay honest.
#ifdef MEDES_TYPES_NEGATIVE_COMPILE

SimDuration MixesDimensions(Bytes bytes, SimDuration d) {
  return bytes + d;  // no operator+(Bytes, SimDuration): must not compile
}

int SwapsOrdinals(NodeId node, SandboxId sandbox) {
  auto probe = [](NodeId n, SandboxId s) { return n.value() + static_cast<int>(s.value()); };
  return probe(sandbox, node);  // swapped arguments: must not compile
}

#endif  // MEDES_TYPES_NEGATIVE_COMPILE

}  // namespace
}  // namespace medes
