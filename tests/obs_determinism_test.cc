// The observability determinism contract: for a fixed trace and platform
// configuration, the exported artifacts (Prometheus text, Chrome trace JSON,
// snapshot-series JSON) are byte-identical regardless of how many worker
// threads the dedup agent uses.  Spans carry sim-time timestamps and metrics
// are order-independent accumulations, so MEDES_THREADS must not leak into
// any export.
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/critical_path.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "platform/platform.h"

namespace medes {
namespace {

#ifndef MEDES_OBS_DISABLED

struct Artifacts {
  std::string prometheus;
  std::string chrome_trace;
  std::string series;
};

PlatformOptions FastOptions(size_t agent_threads) {
  PlatformOptions opts = MakePlatformOptions(PolicyKind::kMedes);
  opts.cluster.num_nodes = 4;
  opts.cluster.node_memory_mb = 1024;
  opts.cluster.bytes_per_mb = 4096;  // small images: fast tests
  opts.medes.idle_period = 30 * kSecond;
  opts.medes.alpha = 8.0;
  opts.agent.num_threads = agent_threads;
  return opts;
}

// Instrument registration is process-lifetime (function-local statics at the
// call sites), so the first run in a process registers instruments mid-run as
// code paths first execute, while every later run sees the full set from its
// first sample onwards.  Warm the registry once so all compared runs start
// from identical registration state; separate processes — the real
// MEDES_THREADS scenario — each warm up the same way and need no such step.
void WarmUpInstruments() {
  static const bool warmed = [] {
    obs::SetMetricsEnabled(true);
    obs::SetTraceEnabled(true);
    TraceOptions topts;
    topts.duration = 8 * kMinute;
    topts.rate_scale = 2.0;
    ServerlessPlatform platform(FastOptions(1));
    platform.Run(GenerateTrace(DefaultAzurePatterns(), topts));
    obs::SetMetricsEnabled(false);
    obs::SetTraceEnabled(false);
    obs::Tracer::Default().Clear();
    return true;
  }();
  (void)warmed;
}

Artifacts RunAndExport(size_t agent_threads, const std::vector<TraceEvent>& trace) {
  WarmUpInstruments();
  obs::MetricsRegistry::Default().ResetValues();
  obs::Tracer::Default().Clear();
  obs::SnapshotSeries::Default().Clear();
  obs::SetMetricsEnabled(true);
  obs::SetTraceEnabled(true);
  obs::SetWallClockProfiling(false);  // wall clock is outside the contract

  ServerlessPlatform platform(FastOptions(agent_threads));
  platform.Run(trace);

  Artifacts out;
  out.prometheus = obs::PrometheusText(obs::MetricsRegistry::Default().Snapshot());
  out.chrome_trace = obs::ChromeTraceJson(obs::Tracer::Default().Drain());
  out.series = obs::SeriesJson(obs::SnapshotSeries::Default().Points());

  obs::MetricsRegistry::Default().ResetValues();
  obs::SnapshotSeries::Default().Clear();
  obs::SetMetricsEnabled(false);
  obs::SetTraceEnabled(false);
  return out;
}

TEST(ObsDeterminismTest, ExportsBitIdenticalAcrossThreadCounts) {
  TraceOptions topts;
  topts.duration = 5 * kMinute;
  topts.rate_scale = 2.0;
  const auto trace = GenerateTrace(DefaultAzurePatterns(), topts);

  const size_t hw = std::max<size_t>(2, std::thread::hardware_concurrency());
  const Artifacts serial = RunAndExport(1, trace);

  // A run produces real data, not empty exports.
  EXPECT_NE(serial.prometheus.find("medes_dedup_ops_total"), std::string::npos);
  EXPECT_NE(serial.chrome_trace.find("restore/criu_rebuild"), std::string::npos);
  EXPECT_NE(serial.series.find("\"t\":"), std::string::npos);

  for (size_t threads : {size_t{4}, hw}) {
    const Artifacts parallel = RunAndExport(threads, trace);
    EXPECT_EQ(serial.prometheus, parallel.prometheus) << "threads=" << threads;
    EXPECT_EQ(serial.chrome_trace, parallel.chrome_trace) << "threads=" << threads;
    EXPECT_EQ(serial.series, parallel.series) << "threads=" << threads;
  }
}

// One sampled run: the Chrome trace JSON (ids included) plus a canonical
// serialization of every sampled trace's parent/child structure — trace id,
// root, and each node's children in recorded order — so link-order identity
// is asserted directly, not just via the flat export.
struct SampledArtifacts {
  std::string chrome_trace;
  std::string linkage;
  size_t traces = 0;
};

SampledArtifacts RunSampled(size_t agent_threads, unsigned sample_every,
                            const std::vector<TraceEvent>& trace) {
  WarmUpInstruments();
  obs::MetricsRegistry::Default().ResetValues();
  obs::Tracer::Default().Clear();
  obs::SnapshotSeries::Default().Clear();
  obs::SetMetricsEnabled(true);
  obs::SetTraceEnabled(true);
  obs::SetTraceSampleEvery(sample_every);
  obs::SetWallClockProfiling(false);

  ServerlessPlatform platform(FastOptions(agent_threads));
  platform.Run(trace);

  SampledArtifacts out;
  const std::vector<obs::Span> spans = obs::Tracer::Default().Drain();
  out.chrome_trace = obs::ChromeTraceJson(spans);
  for (const obs::TraceTree& tree : obs::BuildTraceTrees(spans)) {
    ++out.traces;
    out.linkage += std::to_string(tree.trace_id) + " root=" + std::to_string(tree.root);
    for (const obs::TraceNode& node : tree.nodes) {
      out.linkage += " " + std::string(spans[node.span].name) + "(" +
                     std::to_string(spans[node.span].span_id) + "<-" +
                     std::to_string(spans[node.span].parent_span_id) + "):[";
      for (size_t c : node.children) {
        out.linkage += std::to_string(c) + ",";
      }
      out.linkage += "]";
    }
    out.linkage += "\n";
  }

  obs::MetricsRegistry::Default().ResetValues();
  obs::SnapshotSeries::Default().Clear();
  obs::SetTraceSampleEvery(1);
  obs::SetMetricsEnabled(false);
  obs::SetTraceEnabled(false);
  return out;
}

// The satellite contract for MEDES_TRACE_SAMPLE: the sampled span set, its
// ids, and every parent/child link come out byte-identical at any thread
// count and across runs.
TEST(ObsDeterminismTest, SampledTracesBitIdenticalAcrossThreadCounts) {
  TraceOptions topts;
  topts.duration = 8 * kMinute;
  topts.rate_scale = 2.0;
  const auto trace = GenerateTrace(DefaultAzurePatterns(), topts);

  const size_t hw = std::max<size_t>(2, std::thread::hardware_concurrency());
  const SampledArtifacts serial = RunSampled(1, 4, trace);
  EXPECT_GT(serial.traces, 0u);
  EXPECT_NE(serial.chrome_trace.find("\"trace_id\":"), std::string::npos);
  EXPECT_NE(serial.chrome_trace.find("\"parent_span_id\":"), std::string::npos);

  // 1-in-4 head sampling really drops traces: an unsampled run sees more.
  const SampledArtifacts unsampled = RunSampled(1, 1, trace);
  EXPECT_GT(unsampled.traces, serial.traces);

  for (size_t threads : {size_t{4}, hw}) {
    const SampledArtifacts parallel = RunSampled(threads, 4, trace);
    EXPECT_EQ(serial.chrome_trace, parallel.chrome_trace) << "threads=" << threads;
    EXPECT_EQ(serial.linkage, parallel.linkage) << "threads=" << threads;
  }
}

TEST(ObsDeterminismTest, SampledTracesBitIdenticalAcrossRuns) {
  TraceOptions topts;
  topts.duration = 5 * kMinute;
  topts.rate_scale = 2.0;
  const auto trace = GenerateTrace(DefaultAzurePatterns(), topts);
  const SampledArtifacts a = RunSampled(2, 4, trace);
  const SampledArtifacts b = RunSampled(2, 4, trace);
  EXPECT_EQ(a.chrome_trace, b.chrome_trace);
  EXPECT_EQ(a.linkage, b.linkage);
}

TEST(ObsDeterminismTest, RepeatedRunsAreBitIdentical) {
  TraceOptions topts;
  topts.duration = 3 * kMinute;
  topts.rate_scale = 2.0;
  const auto trace = GenerateTrace(DefaultAzurePatterns(), topts);
  const Artifacts a = RunAndExport(2, trace);
  const Artifacts b = RunAndExport(2, trace);
  EXPECT_EQ(a.prometheus, b.prometheus);
  EXPECT_EQ(a.chrome_trace, b.chrome_trace);
  EXPECT_EQ(a.series, b.series);
}

TEST(ObsDeterminismTest, SpanCoverageIncludesAllPipelineStages) {
  TraceOptions topts;
  topts.duration = 8 * kMinute;
  topts.rate_scale = 2.0;
  const auto trace = GenerateTrace(DefaultAzurePatterns(), topts);
  const Artifacts run = RunAndExport(2, trace);
  // Dedup pipeline stages.
  for (const char* stage : {"dedup_op", "dedup/checkpoint", "dedup/fingerprint",
                            "dedup/registry_lookup", "dedup/base_read", "dedup/delta_encode",
                            "dedup/merge"}) {
    EXPECT_NE(run.chrome_trace.find(stage), std::string::npos) << stage;
  }
  // Restore stages: the paper's Fig. 8 breakdown, lazy-mode naming (the
  // default restore mode batches the working-set fetch), plus the deferred
  // background completion span.
  for (const char* stage : {"restore_op", "restore/ws_fetch", "restore/patch_apply",
                            "restore/criu_rebuild", "restore/bg_fault"}) {
    EXPECT_NE(run.chrome_trace.find(stage), std::string::npos) << stage;
  }
  // Platform lifecycle events.
  for (const char* name : {"request", "spawn"}) {
    EXPECT_NE(run.chrome_trace.find(name), std::string::npos) << name;
  }
}

TEST(ObsDeterminismTest, EagerModeEmitsBaseReadSpans) {
  TraceOptions topts;
  topts.duration = 8 * kMinute;
  topts.rate_scale = 2.0;
  const auto trace = GenerateTrace(DefaultAzurePatterns(), topts);
  WarmUpInstruments();
  obs::MetricsRegistry::Default().ResetValues();
  obs::Tracer::Default().Clear();
  obs::SnapshotSeries::Default().Clear();
  obs::SetMetricsEnabled(true);
  obs::SetTraceEnabled(true);
  obs::SetWallClockProfiling(false);
  PlatformOptions opts = FastOptions(2);
  opts.agent.restore_mode = RestoreMode::kEager;
  ServerlessPlatform platform(opts);
  platform.Run(trace);
  const std::string chrome_trace = obs::ChromeTraceJson(obs::Tracer::Default().Drain());
  obs::MetricsRegistry::Default().ResetValues();
  obs::SnapshotSeries::Default().Clear();
  obs::SetMetricsEnabled(false);
  obs::SetTraceEnabled(false);
  for (const char* stage :
       {"restore_op", "restore/base_read", "restore/patch_apply", "restore/criu_rebuild"}) {
    EXPECT_NE(chrome_trace.find(stage), std::string::npos) << stage;
  }
  EXPECT_EQ(chrome_trace.find("restore/ws_fetch"), std::string::npos);
  EXPECT_EQ(chrome_trace.find("restore/bg_fault"), std::string::npos);
}

#else

TEST(ObsDeterminismTest, SkippedWhenObsCompiledOut) { GTEST_SKIP(); }

#endif  // MEDES_OBS_DISABLED

}  // namespace
}  // namespace medes
