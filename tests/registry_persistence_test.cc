// End-to-end crash/restart recovery and the backend determinism pin.
//
// Runs the full platform on the persistent state-store backend, "restarts"
// by reopening the surviving log+checkpoint directory, and replays the
// recovered state into a fresh registry with the live-cluster validator —
// the same drill bench/registry_persistence.cc performs, here asserted as a
// regression test. Also pins the ISSUE's determinism contract: the memory
// and persistent backends (at 1 and 4 pipeline threads) produce byte-
// identical dedup decisions and RunMetrics when the RAM budget is unbounded.
#include <algorithm>
#include <filesystem>
#include <string>
#include <tuple>
#include <vector>

#include "gtest/gtest.h"
#include "medes.h"

namespace medes {
namespace {

std::string FreshStoreDir(const char* name) {
  // medes-lint: allow(direct-filesystem) test scaffolding for the store's files
  const std::string dir = (std::filesystem::temp_directory_path() / name).string();
  // medes-lint: allow(direct-filesystem) test scaffolding for the store's files
  std::filesystem::remove_all(dir);
  return dir;
}

void RemoveDir(const std::string& dir) {
  std::error_code ec;
  // medes-lint: allow(direct-filesystem) test scaffolding for the store's files
  std::filesystem::remove_all(dir, ec);
}

PlatformOptions SmallClusterOptions() {
  PlatformOptions options = MakePlatformOptions(PolicyKind::kMedes);
  options.cluster.num_nodes = 4;
  options.cluster.node_memory_mb = 2048;
  options.cluster.bytes_per_mb = 4096;
  options.medes.alpha = 20.0;
  return options;
}

std::vector<TraceEvent> ShortTrace() {
  TraceOptions topts;
  topts.duration = 4 * kMinute;
  topts.rate_scale = 1.0;
  return GenerateTrace(DefaultAzurePatterns(), topts);
}

// Canonical ordering so lookup results can be compared as sets: the ranked
// prefix is identical either way, but equal-overlap ties may order by
// insertion history, which differs between a live and a recovered registry.
void Canonicalize(std::vector<BasePageCandidate>& candidates) {
  auto key = [](const BasePageCandidate& c) {
    return std::tie(c.overlap, c.location.node, c.location.sandbox, c.location.page_index);
  };
  std::sort(candidates.begin(), candidates.end(),
            [&key](const BasePageCandidate& a, const BasePageCandidate& b) {
              return key(a) < key(b);
            });
}

TEST(RegistryPersistenceTest, CrashRestartRecoversRegistryAndRevalidates) {
  const std::string dir = FreshStoreDir("medes_persistence_test.store");
  PlatformOptions options = SmallClusterOptions();
  options.store.backend = store::StoreBackend::kPersistent;
  options.store.directory = dir;
  options.store.checkpoint_every_records = 128;  // force several compactions

  ServerlessPlatform platform(options);
  (void)platform.Run(ShortTrace());
  const size_t live = platform.cluster().base_snapshots().size();
  ASSERT_GT(live, 0u) << "the trace should have designated base sandboxes";
  EXPECT_GT(platform.state_store().durability_stats().checkpoints, 0u);

  // "Restart": reopen the surviving files, replay into a fresh registry,
  // re-validating every sandbox against the still-live cluster.
  const auto reopened = store::MakeStateStore(options.store);
  FingerprintRegistry recovered(options.registry);
  const RecoveryReport report =
      RecoverInto(*reopened, recovered, MakeRecoveryValidator(platform.cluster()));

  EXPECT_TRUE(report.store_state.clean);
  EXPECT_EQ(report.rejected_sandboxes, 0u);
  EXPECT_EQ(report.recovered_sandboxes, live);
  EXPECT_GT(report.recovered_pages, 0u);
  EXPECT_GT(report.store_state.checkpoint_records + report.store_state.log_records, 0u);

  // The recovered registry must answer lookups exactly like the live one.
  RegistryBackend& live_registry = platform.registry();
  size_t fingerprints_checked = 0;
  for (const store::RecoveredSandbox& sb : report.store_state.sandboxes) {
    for (const PageFingerprint& fp : sb.fingerprints) {
      auto want = live_registry.FindBasePages(fp, NodeId{0}, kNoSandbox, 4);
      auto got = recovered.FindBasePages(fp, NodeId{0}, kNoSandbox, 4);
      Canonicalize(want);
      Canonicalize(got);
      ASSERT_EQ(want.size(), got.size());
      for (size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(want[i].overlap, got[i].overlap);
        EXPECT_EQ(want[i].location.node, got[i].location.node);
        EXPECT_EQ(want[i].location.sandbox, got[i].location.sandbox);
        EXPECT_EQ(want[i].location.page_index, got[i].location.page_index);
      }
      ++fingerprints_checked;
      if (fingerprints_checked >= 512) {
        break;  // plenty of coverage; keep the test fast
      }
    }
    if (fingerprints_checked >= 512) {
      break;
    }
  }
  EXPECT_GT(fingerprints_checked, 0u);
  RemoveDir(dir);
}

// Recovered entries are not trusted: a sandbox whose live base snapshot is
// gone by restart time must be rejected by the validator, not served.
TEST(RegistryPersistenceTest, StaleSandboxesAreRejectedByValidator) {
  const std::string dir = FreshStoreDir("medes_persistence_stale.store");
  PlatformOptions options = SmallClusterOptions();
  options.store.backend = store::StoreBackend::kPersistent;
  options.store.directory = dir;

  ServerlessPlatform platform(options);
  (void)platform.Run(ShortTrace());
  auto& bases = platform.cluster().base_snapshots();
  ASSERT_GT(bases.size(), 1u);
  const SandboxId purged = bases.begin()->first;
  platform.cluster().RemoveBaseSnapshot(purged);
  const size_t live_after = platform.cluster().base_snapshots().size();

  const auto reopened = store::MakeStateStore(options.store);
  FingerprintRegistry recovered(options.registry);
  const RecoveryReport report =
      RecoverInto(*reopened, recovered, MakeRecoveryValidator(platform.cluster()));

  EXPECT_TRUE(report.store_state.clean);  // the *files* are fine...
  EXPECT_GE(report.rejected_sandboxes, 1u);  // ...but the purged base is not
  EXPECT_EQ(report.recovered_sandboxes, live_after);
  EXPECT_FALSE(recovered.IsBaseSandbox(purged));
  RemoveDir(dir);
}

// Determinism pin (ISSUE satellite): with an unbounded RAM budget the store
// backend is invisible — memory and persistent backends, at 1 and 4 pipeline
// threads, make byte-identical dedup decisions and report identical
// RunMetrics.
TEST(RegistryPersistenceTest, BackendsAndThreadCountsAreByteIdentical) {
  const std::vector<TraceEvent> trace = ShortTrace();

  auto run = [&trace](store::StoreBackend backend, size_t threads,
                      const std::string& dir) {
    PlatformOptions options = SmallClusterOptions();
    options.agent.num_threads = threads;
    options.store.backend = backend;
    options.store.directory = dir;
    return ServerlessPlatform(options).Run(trace);
  };

  const RunMetrics ref = run(store::StoreBackend::kMemory, 1, "");
  struct Variant {
    const char* label;
    store::StoreBackend backend;
    size_t threads;
  };
  const Variant variants[] = {
      {"memory/4", store::StoreBackend::kMemory, 4},
      {"persistent/1", store::StoreBackend::kPersistent, 1},
      {"persistent/4", store::StoreBackend::kPersistent, 4},
  };
  for (const Variant& v : variants) {
    SCOPED_TRACE(v.label);
    std::string dir;
    if (v.backend == store::StoreBackend::kPersistent) {
      dir = FreshStoreDir("medes_persistence_pin.store");
    }
    const RunMetrics m = run(v.backend, v.threads, dir);

    EXPECT_EQ(m.TotalColdStarts(), ref.TotalColdStarts());
    EXPECT_EQ(m.dedup_ops, ref.dedup_ops);
    EXPECT_EQ(m.restores, ref.restores);
    EXPECT_EQ(m.sandboxes_spawned, ref.sandboxes_spawned);
    EXPECT_EQ(m.sandboxes_deduped, ref.sandboxes_deduped);
    EXPECT_EQ(m.evictions, ref.evictions);
    EXPECT_EQ(m.base_designations, ref.base_designations);
    ASSERT_EQ(m.requests.size(), ref.requests.size());
    for (size_t i = 0; i < m.requests.size(); ++i) {
      ASSERT_EQ(m.requests[i].e2e, ref.requests[i].e2e) << "request " << i;
    }

    // StoreStats is backend-independent by contract: identical appends,
    // residency, and (unbounded) zero cold traffic either way.
    EXPECT_EQ(m.store.appends, ref.store.appends);
    EXPECT_EQ(m.store.append_bytes, ref.store.append_bytes);
    EXPECT_EQ(m.store.removes, ref.store.removes);
    EXPECT_EQ(m.store.registry_entries, ref.store.registry_entries);
    EXPECT_EQ(m.store.base_pages, ref.store.base_pages);
    EXPECT_EQ(m.store.hot_hits, ref.store.hot_hits);
    EXPECT_EQ(m.store.peak_state_bytes, ref.store.peak_state_bytes);
    EXPECT_EQ(m.store.cold_fetches, 0u);
    EXPECT_EQ(m.store.evictions, 0u);

    if (!dir.empty()) {
      RemoveDir(dir);
    }
  }
}

}  // namespace
}  // namespace medes
