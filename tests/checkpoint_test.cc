#include "checkpoint/checkpoint.h"

#include <gtest/gtest.h>

#include <cstring>

#include "memstate/library_pool.h"
#include "memstate/profiles.h"

namespace medes {
namespace {

class CheckpointTest : public ::testing::Test {
 protected:
  LibraryPool pool_{7, 16384};
  MemoryImage image_ = BuildSandboxImage(ProfileByName("Vanilla"), pool_, {.instance_seed = 1});
};

TEST_F(CheckpointTest, CaptureRoundTrips) {
  MemoryCheckpoint cp = MemoryCheckpoint::Capture(image_);
  EXPECT_EQ(cp.NumPages(), image_.NumPages());
  EXPECT_TRUE(cp.FullyResident());
  std::vector<uint8_t> bytes = cp.ToBytes();
  ASSERT_EQ(bytes.size(), image_.SizeBytes());
  EXPECT_EQ(std::memcmp(bytes.data(), image_.bytes().data(), bytes.size()), 0);
}

TEST_F(CheckpointTest, ZeroPagesDetected) {
  MemoryCheckpoint cp = MemoryCheckpoint::Capture(image_);
  EXPECT_GT(cp.NumZero(), 0u) << "image has a zero-heap segment";
  // Zero slots hold no payload.
  EXPECT_EQ(cp.ResidentBytes(), (cp.NumPages() - cp.NumZero()) * kPageSize);
}

TEST_F(CheckpointTest, PatchReplacementAccounting) {
  MemoryCheckpoint cp = MemoryCheckpoint::Capture(image_);
  size_t page = 0;
  while (cp.SlotState(page) != PageSlotState::kResident) {
    ++page;
  }
  const size_t resident_before = cp.ResidentBytes();
  std::vector<uint8_t> patch(100, 0xab);
  cp.ReplaceWithPatch(page, patch);
  EXPECT_EQ(cp.SlotState(page), PageSlotState::kPatched);
  EXPECT_EQ(cp.PatchBytes(), 100u);
  EXPECT_EQ(cp.NumPatched(), 1u);
  EXPECT_EQ(cp.ResidentBytes(), resident_before - kPageSize);
  EXPECT_FALSE(cp.FullyResident());
  EXPECT_THROW(cp.ToBytes(), std::logic_error);
}

TEST_F(CheckpointTest, RestorePageBringsBackResidency) {
  MemoryCheckpoint cp = MemoryCheckpoint::Capture(image_);
  size_t page = 0;
  while (cp.SlotState(page) != PageSlotState::kResident) {
    ++page;
  }
  std::vector<uint8_t> original(cp.PageData(page).begin(), cp.PageData(page).end());
  cp.ReplaceWithPatch(page, {1, 2, 3});
  cp.RestorePage(page, original);
  EXPECT_TRUE(cp.FullyResident());
  std::vector<uint8_t> bytes = cp.ToBytes();
  EXPECT_EQ(std::memcmp(bytes.data(), image_.bytes().data(), bytes.size()), 0);
}

TEST_F(CheckpointTest, DoublePatchRejected) {
  MemoryCheckpoint cp = MemoryCheckpoint::Capture(image_);
  size_t page = 0;
  while (cp.SlotState(page) != PageSlotState::kResident) {
    ++page;
  }
  cp.ReplaceWithPatch(page, {1});
  EXPECT_THROW(cp.ReplaceWithPatch(page, {2}), std::logic_error);
  EXPECT_THROW(static_cast<void>(cp.PageData(page)), std::logic_error);
}

TEST_F(CheckpointTest, RestoreUnpatchedRejected) {
  MemoryCheckpoint cp = MemoryCheckpoint::Capture(image_);
  EXPECT_THROW(cp.RestorePage(0, std::vector<uint8_t>(kPageSize, 0)), std::logic_error);
}

TEST_F(CheckpointTest, DropPayloadsKeepsSizes) {
  MemoryCheckpoint cp = MemoryCheckpoint::Capture(image_);
  size_t page = 0;
  while (cp.SlotState(page) != PageSlotState::kResident) {
    ++page;
  }
  cp.ReplaceWithPatch(page, std::vector<uint8_t>(321, 1));
  const size_t resident = cp.ResidentBytes();
  cp.DropPayloads();
  EXPECT_TRUE(cp.payloads_dropped());
  EXPECT_EQ(cp.ResidentBytes(), resident);
  EXPECT_EQ(cp.PatchBytes(), 321u);
  EXPECT_THROW(cp.ToBytes(), std::logic_error);
  // Size-only restore still flips the slot state.
  cp.RestorePage(page, std::vector<uint8_t>(kPageSize, 0));
  EXPECT_TRUE(cp.FullyResident());
}

TEST_F(CheckpointTest, MarkZeroDropsBytes) {
  MemoryCheckpoint cp = MemoryCheckpoint::Capture(image_);
  size_t page = 0;
  while (cp.SlotState(page) != PageSlotState::kResident) {
    ++page;
  }
  const size_t zeros = cp.NumZero();
  cp.MarkZero(page);
  EXPECT_EQ(cp.NumZero(), zeros + 1);
}

TEST_F(CheckpointTest, NamespacePreparationFlag) {
  MemoryCheckpoint cp = MemoryCheckpoint::Capture(image_);
  EXPECT_FALSE(cp.namespaces_prepared());
  cp.set_namespaces_prepared(true);
  EXPECT_TRUE(cp.namespaces_prepared());
}

TEST(CheckpointCostsTest, DefaultsMatchPaperScale) {
  CheckpointCosts costs;
  // Restoring a ~32 MB sandbox (8192 pages): memory restore alone should be
  // on the order of ~100 ms, and the namespace work ~500 ms (650 -> 140 ms
  // optimisation in Section 4.2).
  SimDuration mem_restore = costs.restore_per_page * 8192;
  EXPECT_GT(mem_restore, 50 * kMillisecond);
  EXPECT_LT(mem_restore, 300 * kMillisecond);
  EXPECT_GT(costs.namespace_and_ptree, 300 * kMillisecond);
}

}  // namespace
}  // namespace medes
