// Unit tests for the unified cluster transport: LinkCost boundary behaviour,
// topology resolution, batched send accounting, per-type stats and latency
// histograms, and the StaticFaultPolicy fault-injection seam.
#include "net/transport.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <thread>
#include <vector>

#include "registry/registry_backend.h"  // kRegistryWireBytesPerKey

namespace medes {
namespace {

// ---- LinkCost boundaries -------------------------------------------------

TEST(LinkCostTest, ZeroBytesCostsLatencyAlone) {
  EXPECT_EQ(LinkCost(0, {.latency = 3, .bandwidth_gbps = 10.0}), 3);
  EXPECT_EQ(LinkCost(0, {.latency = 0, .bandwidth_gbps = 10.0}), 0);
}

TEST(LinkCostTest, SubMicrosecondTransferTruncatesToZero) {
  // 1 byte at 10 Gbps is 0.0008 us; truncation leaves the latency term only.
  EXPECT_EQ(LinkCost(1, {.latency = 3, .bandwidth_gbps = 10.0}), 3);
  // 1249 bytes at 10 Gbps is 0.9992 us — still truncates to 0.
  EXPECT_EQ(LinkCost(1249, {.latency = 3, .bandwidth_gbps = 10.0}), 3);
  // 1250 bytes is exactly 1 us.
  EXPECT_EQ(LinkCost(1250, {.latency = 3, .bandwidth_gbps = 10.0}), 4);
}

TEST(LinkCostTest, PinsTheRdmaPageReadCost) {
  // The cost the whole repo's RDMA model is calibrated against: a 4 KiB page
  // over the default 3 us / 10 Gbps link is 3 + trunc(3.2768) = 6 us.
  EXPECT_EQ(LinkCost(4096, {.latency = 3, .bandwidth_gbps = 10.0}), 6);
}

TEST(LinkCostTest, HugeTransfersDoNotOverflow) {
  // 1 TiB at 10 Gbps: 2^40 * 8 / 10^4 us = 879,609,302.2 -> truncated.
  const size_t one_tib = size_t{1} << 40;
  EXPECT_EQ(LinkCost(one_tib, {.latency = 3, .bandwidth_gbps = 10.0}),
            3 + SimDuration{879609302});
}

TEST(LinkCostTest, NonPositiveBandwidthMeansInfinite) {
  EXPECT_EQ(LinkCost(size_t{1} << 40, {.latency = 7, .bandwidth_gbps = 0.0}), 7);
  EXPECT_EQ(LinkCost(4096, {.latency = 7, .bandwidth_gbps = -1.0}), 7);
}

// ---- Topology ------------------------------------------------------------

TEST(TopologyTest, ResolvesLocalRemoteAndOverrides) {
  Topology topo;
  topo.num_nodes = 4;
  topo.remote = {.latency = 3, .bandwidth_gbps = 10.0};
  topo.local = {.latency = 0, .bandwidth_gbps = 80.0};
  EXPECT_EQ(topo.LinkFor(0, 0), topo.local);
  EXPECT_EQ(topo.LinkFor(0, 1), topo.remote);

  const LinkModel slow{.latency = 50, .bandwidth_gbps = 1.0};
  topo.SetLink(0, 1, slow);
  EXPECT_EQ(topo.LinkFor(0, 1), slow);
  EXPECT_EQ(topo.LinkFor(1, 0), topo.remote) << "SetLink is directed";

  topo.SetBidirectionalLink(2, 3, slow);
  EXPECT_EQ(topo.LinkFor(2, 3), slow);
  EXPECT_EQ(topo.LinkFor(3, 2), slow);
  // An override can even change the node-local fast path.
  topo.SetLink(1, 1, slow);
  EXPECT_EQ(topo.LinkFor(1, 1), slow);
}

// ---- LatencyHistogram ----------------------------------------------------

TEST(LatencyHistogramTest, PowerOfTwoBuckets) {
  EXPECT_EQ(LatencyHistogram::BucketIndex(0), 0u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(-5), 0u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(1), 1u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(2), 2u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(3), 2u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(4), 3u);
  // Values past the last bucket's range clamp into it.
  EXPECT_EQ(LatencyHistogram::BucketIndex(SimDuration{1} << 40),
            LatencyHistogram::kNumBuckets - 1);

  EXPECT_EQ(LatencyHistogram::BucketUpperBound(0), 0);
  EXPECT_EQ(LatencyHistogram::BucketUpperBound(1), 1);
  EXPECT_EQ(LatencyHistogram::BucketUpperBound(2), 3);
  EXPECT_EQ(LatencyHistogram::BucketUpperBound(3), 7);

  LatencyHistogram h;
  h.Record(0);
  h.Record(1);
  h.Record(3);
  h.Record(3);
  EXPECT_EQ(h.Count(0), 1u);
  EXPECT_EQ(h.Count(1), 1u);
  EXPECT_EQ(h.Count(2), 2u);
  EXPECT_EQ(h.TotalCount(), 4u);
}

// ---- Transport sends and stats -------------------------------------------

Topology SmallTopology() {
  Topology topo;
  topo.num_nodes = 4;
  topo.remote = {.latency = 3, .bandwidth_gbps = 10.0};
  topo.local = {.latency = 0, .bandwidth_gbps = 0.0};  // free same-node path
  return topo;
}

TEST(TransportTest, ChargesTheLinkCostModel) {
  Transport net(SmallTopology());
  EXPECT_EQ(net.MessageCost(0, 1, 4096), 6);
  EXPECT_EQ(net.MessageCost(0, 0, 4096), 0) << "node-local fast path";

  auto sent = net.Send(MessageType::kBaseRead, 0, 1, 4096);
  EXPECT_TRUE(sent.delivered);
  EXPECT_EQ(sent.cost, 6);
}

TEST(TransportTest, BatchedRequestAccounting) {
  Transport net(SmallTopology());
  // One lookup message carrying 64 logical page lookups.
  net.Send(MessageType::kRegistryLookup, 0, 1, 64 * kRegistryWireBytesPerKey, 64);
  net.Send(MessageType::kRegistryLookup, 0, 1, 8 * kRegistryWireBytesPerKey, 8);
  const TransportStats stats = net.stats();
  const MessageStats& ms = stats.For(MessageType::kRegistryLookup);
  EXPECT_EQ(ms.messages, 2u);
  EXPECT_EQ(ms.requests, 72u);
  EXPECT_EQ(ms.bytes, 72u * kRegistryWireBytesPerKey);
  EXPECT_EQ(ms.dropped, 0u);
  EXPECT_EQ(ms.latency.TotalCount(), 2u);
  // Other message types are untouched.
  EXPECT_EQ(net.stats().For(MessageType::kBaseRead).messages, 0u);
}

TEST(TransportTest, StatsSeparatePerMessageType) {
  Transport net(SmallTopology());
  net.Send(MessageType::kRegistryLookup, 0, 1, 100);
  net.Send(MessageType::kBaseRead, 1, 2, 4096);
  net.Send(MessageType::kControlDecision, 3, 0, 64);
  TransportStats stats = net.stats();
  EXPECT_EQ(stats.TotalMessages(), 3u);
  EXPECT_EQ(stats.TotalBytes(), 100u + 4096u + 64u);
  EXPECT_EQ(stats.For(MessageType::kRegistryLookup).messages, 1u);
  EXPECT_EQ(stats.For(MessageType::kBaseRead).messages, 1u);
  EXPECT_EQ(stats.For(MessageType::kControlDecision).messages, 1u);
  EXPECT_EQ(stats.For(MessageType::kReplicaSync).messages, 0u);

  net.ResetStats();
  EXPECT_EQ(net.stats().TotalMessages(), 0u);
  EXPECT_EQ(net.stats(), TransportStats{});
}

TEST(TransportTest, StatsAreOrderIndependent) {
  // The same multiset of sends must yield bit-identical stats regardless of
  // the order (and thread) they are issued from — the determinism contract.
  std::vector<std::pair<NodeId, size_t>> sends;
  for (int i = 0; i < 64; ++i) {
    sends.push_back({i % 3, static_cast<size_t>(i) * 512});
  }
  Transport forward(SmallTopology());
  for (const auto& [dst, bytes] : sends) {
    forward.Send(MessageType::kBaseRead, 3, dst, bytes);
  }
  Transport reversed(SmallTopology());
  for (auto it = sends.rbegin(); it != sends.rend(); ++it) {
    reversed.Send(MessageType::kBaseRead, 3, it->first, it->second);
  }
  Transport threaded(SmallTopology());
  {
    std::vector<std::thread> workers;
    for (int w = 0; w < 4; ++w) {
      workers.emplace_back([&threaded, &sends, w] {
        for (size_t i = static_cast<size_t>(w); i < sends.size(); i += 4) {
          threaded.Send(MessageType::kBaseRead, 3, sends[i].first, sends[i].second);
        }
      });
    }
    for (std::thread& t : workers) {
      t.join();
    }
  }
  EXPECT_EQ(forward.stats(), reversed.stats());
  EXPECT_EQ(forward.stats(), threaded.stats());
}

// ---- Fault injection -----------------------------------------------------

TEST(TransportFaultTest, NodePartitionDropsBothDirections) {
  Transport net(SmallTopology());
  auto policy = std::make_shared<StaticFaultPolicy>();
  net.InstallFaultPolicy(policy);
  EXPECT_TRUE(net.NodeUp(2));

  policy->PartitionNode(2);
  EXPECT_FALSE(net.NodeUp(2));
  EXPECT_TRUE(net.NodeUp(1));
  EXPECT_FALSE(net.Send(MessageType::kBaseRead, 0, 2, 4096).delivered);
  EXPECT_FALSE(net.Send(MessageType::kBaseRead, 2, 0, 4096).delivered);
  EXPECT_TRUE(net.Send(MessageType::kBaseRead, 0, 1, 4096).delivered);

  policy->HealNode(2);
  EXPECT_TRUE(net.NodeUp(2));
  EXPECT_TRUE(net.Send(MessageType::kBaseRead, 0, 2, 4096).delivered);

  const TransportStats stats = net.stats();
  const MessageStats& ms = stats.For(MessageType::kBaseRead);
  EXPECT_EQ(ms.messages, 4u);
  EXPECT_EQ(ms.dropped, 2u);
  // Latency totals and the histogram cover delivered messages only.
  EXPECT_EQ(ms.total_latency, 2 * 6);
  EXPECT_EQ(ms.max_latency, 6);
  EXPECT_EQ(ms.latency.TotalCount(), 2u);
  EXPECT_DOUBLE_EQ(ms.MeanLatency(), 6.0);
}

TEST(TransportFaultTest, LinkPartitionIsBidirectionalAndHealable) {
  Transport net(SmallTopology());
  auto policy = std::make_shared<StaticFaultPolicy>();
  net.InstallFaultPolicy(policy);

  policy->PartitionLink(0, 1);
  EXPECT_FALSE(net.Send(MessageType::kRegistryLookup, 0, 1, 24).delivered);
  EXPECT_FALSE(net.Send(MessageType::kRegistryLookup, 1, 0, 24).delivered);
  // Nodes stay up — only the one link is cut.
  EXPECT_TRUE(net.NodeUp(0));
  EXPECT_TRUE(net.Send(MessageType::kRegistryLookup, 0, 2, 24).delivered);

  policy->HealLink(0, 1);
  EXPECT_TRUE(net.Send(MessageType::kRegistryLookup, 0, 1, 24).delivered);
}

TEST(TransportFaultTest, TypeDelayAddsToCostOfThatTypeOnly) {
  Transport net(SmallTopology());
  auto policy = std::make_shared<StaticFaultPolicy>();
  net.InstallFaultPolicy(policy);
  policy->SetTypeDelay(MessageType::kRegistryLookup, 100);

  auto lookup = net.Send(MessageType::kRegistryLookup, 0, 1, 0);
  EXPECT_TRUE(lookup.delivered);
  EXPECT_EQ(lookup.cost, 3 + 100);
  auto read = net.Send(MessageType::kBaseRead, 0, 1, 4096);
  EXPECT_EQ(read.cost, 6);
}

TEST(TransportFaultTest, ClearingThePolicyRestoresHealth) {
  Transport net(SmallTopology());
  auto policy = std::make_shared<StaticFaultPolicy>();
  net.InstallFaultPolicy(policy);
  policy->PartitionNode(1);
  EXPECT_FALSE(net.NodeUp(1));
  net.InstallFaultPolicy(nullptr);
  EXPECT_TRUE(net.NodeUp(1));
  EXPECT_TRUE(net.Send(MessageType::kBaseRead, 0, 1, 4096).delivered);
}

}  // namespace
}  // namespace medes
