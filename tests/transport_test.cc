// Unit tests for the unified cluster transport: LinkCost boundary behaviour,
// topology resolution, batched send accounting, per-type stats and latency
// histograms, and the StaticFaultPolicy fault-injection seam.
#include "net/transport.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <thread>
#include <vector>

#include "registry/registry_backend.h"  // kRegistryWireBytesPerKey

namespace medes {
namespace {

// ---- LinkCost boundaries -------------------------------------------------

TEST(LinkCostTest, ZeroBytesCostsLatencyAlone) {
  EXPECT_EQ(LinkCost(Bytes{0}, {.latency = SimDuration{3}, .bandwidth_gbps = 10.0}), SimDuration{3});
  EXPECT_EQ(LinkCost(Bytes{0}, {.latency = SimDuration{0}, .bandwidth_gbps = 10.0}), SimDuration{0});
}

TEST(LinkCostTest, SubMicrosecondTransferTruncatesToZero) {
  // 1 byte at 10 Gbps is 0.0008 us; truncation leaves the latency term only.
  EXPECT_EQ(LinkCost(Bytes{1}, {.latency = SimDuration{3}, .bandwidth_gbps = 10.0}), SimDuration{3});
  // 1249 bytes at 10 Gbps is 0.9992 us — still truncates to 0.
  EXPECT_EQ(LinkCost(Bytes{1249}, {.latency = SimDuration{3}, .bandwidth_gbps = 10.0}), SimDuration{3});
  // 1250 bytes is exactly 1 us.
  EXPECT_EQ(LinkCost(Bytes{1250}, {.latency = SimDuration{3}, .bandwidth_gbps = 10.0}), SimDuration{4});
}

TEST(LinkCostTest, PinsTheRdmaPageReadCost) {
  // The cost the whole repo's RDMA model is calibrated against: a 4 KiB page
  // over the default 3 us / 10 Gbps link is 3 + trunc(3.2768) = 6 us.
  EXPECT_EQ(LinkCost(Bytes{4096}, {.latency = SimDuration{3}, .bandwidth_gbps = 10.0}), SimDuration{6});
}

TEST(LinkCostTest, HugeTransfersDoNotOverflow) {
  // 1 TiB at 10 Gbps: 2^40 * 8 / 10^4 us = 879,609,302.2 -> truncated.
  const size_t one_tib = size_t{1} << 40;
  EXPECT_EQ(LinkCost(Bytes{one_tib}, {.latency = SimDuration{3}, .bandwidth_gbps = 10.0}),
            SimDuration{3} + SimDuration{879609302});
}

TEST(LinkCostTest, NonPositiveBandwidthMeansInfinite) {
  EXPECT_EQ(LinkCost(Bytes{size_t{1} << 40}, {.latency = SimDuration{7}, .bandwidth_gbps = 0.0}), SimDuration{7});
  EXPECT_EQ(LinkCost(Bytes{4096}, {.latency = SimDuration{7}, .bandwidth_gbps = -1.0}), SimDuration{7});
}

// ---- Topology ------------------------------------------------------------

TEST(TopologyTest, ResolvesLocalRemoteAndOverrides) {
  Topology topo;
  topo.num_nodes = 4;
  topo.remote = {.latency = SimDuration{3}, .bandwidth_gbps = 10.0};
  topo.local = {.latency = SimDuration{0}, .bandwidth_gbps = 80.0};
  EXPECT_EQ(topo.LinkFor(NodeId{0}, NodeId{0}), topo.local);
  EXPECT_EQ(topo.LinkFor(NodeId{0}, NodeId{1}), topo.remote);

  const LinkModel slow{.latency = SimDuration{50}, .bandwidth_gbps = 1.0};
  topo.SetLink(NodeId{0}, NodeId{1}, slow);
  EXPECT_EQ(topo.LinkFor(NodeId{0}, NodeId{1}), slow);
  EXPECT_EQ(topo.LinkFor(NodeId{1}, NodeId{0}), topo.remote) << "SetLink is directed";

  topo.SetBidirectionalLink(NodeId{2}, NodeId{3}, slow);
  EXPECT_EQ(topo.LinkFor(NodeId{2}, NodeId{3}), slow);
  EXPECT_EQ(topo.LinkFor(NodeId{3}, NodeId{2}), slow);
  // An override can even change the node-local fast path.
  topo.SetLink(NodeId{1}, NodeId{1}, slow);
  EXPECT_EQ(topo.LinkFor(NodeId{1}, NodeId{1}), slow);
}

// ---- LatencyHistogram ----------------------------------------------------

TEST(LatencyHistogramTest, PowerOfTwoBuckets) {
  EXPECT_EQ(LatencyHistogram::BucketIndex(SimDuration{0}), 0u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(SimDuration{-5}), 0u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(SimDuration{1}), 1u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(SimDuration{2}), 2u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(SimDuration{3}), 2u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(SimDuration{4}), 3u);
  // Values past the last bucket's range clamp into it.
  EXPECT_EQ(LatencyHistogram::BucketIndex(SimDuration{int64_t{1} << 40}),
            LatencyHistogram::kNumBuckets - 1);

  EXPECT_EQ(LatencyHistogram::BucketUpperBound(0), SimDuration{0});
  EXPECT_EQ(LatencyHistogram::BucketUpperBound(1), SimDuration{1});
  EXPECT_EQ(LatencyHistogram::BucketUpperBound(2), SimDuration{3});
  EXPECT_EQ(LatencyHistogram::BucketUpperBound(3), SimDuration{7});

  LatencyHistogram h;
  h.Record(SimDuration{0});
  h.Record(SimDuration{1});
  h.Record(SimDuration{3});
  h.Record(SimDuration{3});
  EXPECT_EQ(h.Count(0), 1u);
  EXPECT_EQ(h.Count(1), 1u);
  EXPECT_EQ(h.Count(2), 2u);
  EXPECT_EQ(h.TotalCount(), 4u);
}

// ---- Transport sends and stats -------------------------------------------

Topology SmallTopology() {
  Topology topo;
  topo.num_nodes = 4;
  topo.remote = {.latency = SimDuration{3}, .bandwidth_gbps = 10.0};
  topo.local = {.latency = SimDuration{0}, .bandwidth_gbps = 0.0};  // free same-node path
  return topo;
}

TEST(TransportTest, ChargesTheLinkCostModel) {
  Transport net(SmallTopology());
  EXPECT_EQ(net.MessageCost(NodeId{0}, NodeId{1}, Bytes{4096}), SimDuration{6});
  EXPECT_EQ(net.MessageCost(NodeId{0}, NodeId{0}, Bytes{4096}), SimDuration{0}) << "node-local fast path";

  auto sent = net.Send(MessageType::kBaseRead, NodeId{0}, NodeId{1}, Bytes{4096});
  EXPECT_TRUE(sent.delivered);
  EXPECT_EQ(sent.cost, SimDuration{6});
}

TEST(TransportTest, BatchedRequestAccounting) {
  Transport net(SmallTopology());
  // One lookup message carrying 64 logical page lookups.
  net.Send(MessageType::kRegistryLookup, NodeId{0}, NodeId{1}, Bytes{64} * kRegistryWireBytesPerKey.value(), 64);
  net.Send(MessageType::kRegistryLookup, NodeId{0}, NodeId{1}, Bytes{8} * kRegistryWireBytesPerKey.value(), 8);
  const TransportStats stats = net.stats();
  const MessageStats& ms = stats.For(MessageType::kRegistryLookup);
  EXPECT_EQ(ms.messages, 2u);
  EXPECT_EQ(ms.requests, 72u);
  EXPECT_EQ(ms.bytes, 72u * kRegistryWireBytesPerKey.value());
  EXPECT_EQ(ms.dropped, 0u);
  EXPECT_EQ(ms.latency.TotalCount(), 2u);
  // Other message types are untouched.
  EXPECT_EQ(net.stats().For(MessageType::kBaseRead).messages, 0u);
}

TEST(TransportTest, StatsSeparatePerMessageType) {
  Transport net(SmallTopology());
  net.Send(MessageType::kRegistryLookup, NodeId{0}, NodeId{1}, Bytes{100});
  net.Send(MessageType::kBaseRead, NodeId{1}, NodeId{2}, Bytes{4096});
  net.Send(MessageType::kControlDecision, NodeId{3}, NodeId{0}, Bytes{64});
  TransportStats stats = net.stats();
  EXPECT_EQ(stats.TotalMessages(), 3u);
  EXPECT_EQ(stats.TotalBytes(), 100u + 4096u + 64u);
  EXPECT_EQ(stats.For(MessageType::kRegistryLookup).messages, 1u);
  EXPECT_EQ(stats.For(MessageType::kBaseRead).messages, 1u);
  EXPECT_EQ(stats.For(MessageType::kControlDecision).messages, 1u);
  EXPECT_EQ(stats.For(MessageType::kReplicaSync).messages, 0u);

  net.ResetStats();
  EXPECT_EQ(net.stats().TotalMessages(), 0u);
  EXPECT_EQ(net.stats(), TransportStats{});
}

TEST(TransportTest, StatsAreOrderIndependent) {
  // The same multiset of sends must yield bit-identical stats regardless of
  // the order (and thread) they are issued from — the determinism contract.
  std::vector<std::pair<NodeId, size_t>> sends;
  for (int i = 0; i < 64; ++i) {
    sends.push_back({NodeId{i % 3}, static_cast<size_t>(i) * 512});
  }
  Transport forward(SmallTopology());
  for (const auto& [dst, bytes] : sends) {
    (void)forward.Send(MessageType::kBaseRead, NodeId{3}, dst, Bytes{bytes});
  }
  Transport reversed(SmallTopology());
  for (auto it = sends.rbegin(); it != sends.rend(); ++it) {
    (void)reversed.Send(MessageType::kBaseRead, NodeId{3}, it->first, Bytes{it->second});
  }
  Transport threaded(SmallTopology());
  {
    std::vector<std::thread> workers;
    for (int w = 0; w < 4; ++w) {
      workers.emplace_back([&threaded, &sends, w] {
        for (size_t i = static_cast<size_t>(w); i < sends.size(); i += 4) {
          (void)threaded.Send(MessageType::kBaseRead, NodeId{3}, sends[i].first, Bytes{sends[i].second});
        }
      });
    }
    for (std::thread& t : workers) {
      t.join();
    }
  }
  EXPECT_EQ(forward.stats(), reversed.stats());
  EXPECT_EQ(forward.stats(), threaded.stats());
}

// ---- Fault injection -----------------------------------------------------

TEST(TransportFaultTest, NodePartitionDropsBothDirections) {
  Transport net(SmallTopology());
  auto policy = std::make_shared<StaticFaultPolicy>();
  net.InstallFaultPolicy(policy);
  EXPECT_TRUE(net.NodeUp(NodeId{2}));

  policy->PartitionNode(NodeId{2});
  EXPECT_FALSE(net.NodeUp(NodeId{2}));
  EXPECT_TRUE(net.NodeUp(NodeId{1}));
  EXPECT_FALSE(net.Send(MessageType::kBaseRead, NodeId{0}, NodeId{2}, Bytes{4096}).delivered);
  EXPECT_FALSE(net.Send(MessageType::kBaseRead, NodeId{2}, NodeId{0}, Bytes{4096}).delivered);
  EXPECT_TRUE(net.Send(MessageType::kBaseRead, NodeId{0}, NodeId{1}, Bytes{4096}).delivered);

  policy->HealNode(NodeId{2});
  EXPECT_TRUE(net.NodeUp(NodeId{2}));
  EXPECT_TRUE(net.Send(MessageType::kBaseRead, NodeId{0}, NodeId{2}, Bytes{4096}).delivered);

  const TransportStats stats = net.stats();
  const MessageStats& ms = stats.For(MessageType::kBaseRead);
  EXPECT_EQ(ms.messages, 4u);
  EXPECT_EQ(ms.dropped, 2u);
  // Latency totals and the histogram cover delivered messages only.
  EXPECT_EQ(ms.total_latency, SimDuration{2 * 6});
  EXPECT_EQ(ms.max_latency, SimDuration{6});
  EXPECT_EQ(ms.latency.TotalCount(), 2u);
  EXPECT_DOUBLE_EQ(ms.MeanLatency(), 6.0);
}

TEST(TransportFaultTest, LinkPartitionIsBidirectionalAndHealable) {
  Transport net(SmallTopology());
  auto policy = std::make_shared<StaticFaultPolicy>();
  net.InstallFaultPolicy(policy);

  policy->PartitionLink(NodeId{0}, NodeId{1});
  EXPECT_FALSE(net.Send(MessageType::kRegistryLookup, NodeId{0}, NodeId{1}, Bytes{24}).delivered);
  EXPECT_FALSE(net.Send(MessageType::kRegistryLookup, NodeId{1}, NodeId{0}, Bytes{24}).delivered);
  // Nodes stay up — only the one link is cut.
  EXPECT_TRUE(net.NodeUp(NodeId{0}));
  EXPECT_TRUE(net.Send(MessageType::kRegistryLookup, NodeId{0}, NodeId{2}, Bytes{24}).delivered);

  policy->HealLink(NodeId{0}, NodeId{1});
  EXPECT_TRUE(net.Send(MessageType::kRegistryLookup, NodeId{0}, NodeId{1}, Bytes{24}).delivered);
}

TEST(TransportFaultTest, TypeDelayAddsToCostOfThatTypeOnly) {
  Transport net(SmallTopology());
  auto policy = std::make_shared<StaticFaultPolicy>();
  net.InstallFaultPolicy(policy);
  policy->SetTypeDelay(MessageType::kRegistryLookup, SimDuration{100});

  auto lookup = net.Send(MessageType::kRegistryLookup, NodeId{0}, NodeId{1}, Bytes{0});
  EXPECT_TRUE(lookup.delivered);
  EXPECT_EQ(lookup.cost, SimDuration{3 + 100});
  auto read = net.Send(MessageType::kBaseRead, NodeId{0}, NodeId{1}, Bytes{4096});
  EXPECT_EQ(read.cost, SimDuration{6});
}

TEST(TransportFaultTest, ClearingThePolicyRestoresHealth) {
  Transport net(SmallTopology());
  auto policy = std::make_shared<StaticFaultPolicy>();
  net.InstallFaultPolicy(policy);
  policy->PartitionNode(NodeId{1});
  EXPECT_FALSE(net.NodeUp(NodeId{1}));
  net.InstallFaultPolicy(nullptr);
  EXPECT_TRUE(net.NodeUp(NodeId{1}));
  EXPECT_TRUE(net.Send(MessageType::kBaseRead, NodeId{0}, NodeId{1}, Bytes{4096}).delivered);
}

}  // namespace
}  // namespace medes
