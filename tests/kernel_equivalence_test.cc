// Bit-identical equivalence of every dispatched kernel variant against the
// scalar reference (the contract in common/kernels/cpu_features.h): same
// digests, same rolling-hash words, same match lengths, same delta bytes at
// every tier the machine can bind. Also exercises the MEDES_FORCE_SCALAR
// environment knob via ResetTierFromEnvironment.
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "common/kernels/cpu_features.h"
#include "common/kernels/memops.h"
#include "common/kernels/rolling_kernels.h"
#include "common/kernels/sha1_kernels.h"
#include "common/rng.h"
#include "common/sha1.h"
#include "delta/delta.h"

namespace medes {
namespace {

using kernels::Tier;

std::vector<uint8_t> RandomBytes(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> out(n);
  for (auto& b : out) {
    b = static_cast<uint8_t>(rng.Next());
  }
  return out;
}

// Flat storage for n five-word SHA-1 states, viewable as the
// `uint32_t (*)[5]` the batch kernels take.
struct StateArray {
  explicit StateArray(size_t n) : words(n * 5, 0) {}
  uint32_t (*data())[5] { return reinterpret_cast<uint32_t(*)[5]>(words.data()); }
  uint32_t at(size_t i, int s) const { return words[i * 5 + static_cast<size_t>(s)]; }
  std::vector<uint32_t> words;
};

std::vector<Tier> BindableTiers() {
  std::vector<Tier> tiers;
  for (Tier t : {Tier::kScalar, Tier::kSwar, Tier::kSse42, Tier::kAvx2}) {
    if (t <= kernels::MaxSupportedTier()) {
      tiers.push_back(t);
    }
  }
  return tiers;
}

// Restores the environment-derived tier after each test so the forced tier
// never leaks into other test binaries' expectations.
class KernelEquivalenceTest : public ::testing::Test {
 protected:
  void TearDown() override {
    unsetenv("MEDES_FORCE_SCALAR");
    kernels::ResetTierFromEnvironment();
  }
};

TEST_F(KernelEquivalenceTest, ForceTierClampsToSupported) {
  Tier bound = kernels::ForceTier(Tier::kAvx2);
  EXPECT_LE(bound, kernels::MaxSupportedTier());
  EXPECT_EQ(bound, kernels::ActiveTier());
  EXPECT_EQ(kernels::ForceTier(Tier::kScalar), Tier::kScalar);
}

TEST_F(KernelEquivalenceTest, ForceScalarEnvironmentKnob) {
  setenv("MEDES_FORCE_SCALAR", "1", 1);
  EXPECT_EQ(kernels::ResetTierFromEnvironment(), Tier::kScalar);
  EXPECT_EQ(kernels::ActiveTier(), Tier::kScalar);

  // "0" / "off" / "false" mean *not* forced.
  for (const char* off : {"0", "off", "false", ""}) {
    setenv("MEDES_FORCE_SCALAR", off, 1);
    EXPECT_EQ(kernels::ResetTierFromEnvironment(), kernels::MaxSupportedTier()) << off;
  }
  unsetenv("MEDES_FORCE_SCALAR");
  EXPECT_EQ(kernels::ResetTierFromEnvironment(), kernels::MaxSupportedTier());
}

TEST_F(KernelEquivalenceTest, Sha1SingleBlockAllTiers) {
  auto data = RandomBytes(64 * 37, 101);
  for (Tier tier : BindableTiers()) {
    kernels::ForceTier(tier);
    for (size_t i = 0; i < 37; ++i) {
      const uint8_t* block = data.data() + i * 64;
      uint32_t ref[5];
      uint32_t got[5];
      for (int s = 0; s < 5; ++s) {
        ref[s] = got[s] = kernels::kSha1Init[s];
      }
      kernels::Sha1CompressScalar(ref, block);
      kernels::Sha1Compress(got, block);
      for (int s = 0; s < 5; ++s) {
        ASSERT_EQ(got[s], ref[s]) << kernels::TierName(tier) << " block " << i;
      }
    }
  }
}

TEST_F(KernelEquivalenceTest, Sha1Chunk64AllTiers) {
  auto data = RandomBytes(64 * 64, 102);
  for (Tier tier : BindableTiers()) {
    kernels::ForceTier(tier);
    for (size_t i = 0; i < 64; ++i) {
      uint32_t ref[5];
      uint32_t got[5];
      kernels::Sha1Chunk64Scalar(data.data() + i * 64, ref);
      kernels::Sha1Chunk64(data.data() + i * 64, got);
      for (int s = 0; s < 5; ++s) {
        ASSERT_EQ(got[s], ref[s]) << kernels::TierName(tier) << " chunk " << i;
      }
    }
  }
}

// Batch sizes straddling every lane-group boundary of the 4-way SWAR and
// 8-way AVX2 variants, including the empty batch.
TEST_F(KernelEquivalenceTest, Sha1Chunk64BatchAllTiers) {
  constexpr size_t kMax = 21;
  auto data = RandomBytes(64 * kMax, 103);
  std::vector<const uint8_t*> ptrs(kMax);
  for (size_t i = 0; i < kMax; ++i) {
    ptrs[i] = data.data() + i * 64;
  }
  StateArray ref(kMax);
  kernels::Sha1Chunk64BatchScalar(ptrs.data(), kMax, ref.data());
  for (Tier tier : BindableTiers()) {
    kernels::ForceTier(tier);
    for (size_t n : {size_t{0}, size_t{1}, size_t{3}, size_t{4}, size_t{5}, size_t{7}, size_t{8},
                     size_t{9}, size_t{16}, size_t{17}, kMax}) {
      StateArray got(n + 1);
      kernels::Sha1Chunk64Batch(ptrs.data(), n, got.data());
      for (size_t i = 0; i < n; ++i) {
        for (int s = 0; s < 5; ++s) {
          ASSERT_EQ(got.at(i, s), ref.at(i, s))
              << kernels::TierName(tier) << " n=" << n << " chunk " << i;
        }
      }
    }
  }
}

// The named variants, called directly where the hardware allows, must agree
// with scalar no matter what tier is bound.
TEST_F(KernelEquivalenceTest, Sha1NamedVariantsDirect) {
  constexpr size_t kN = 13;
  auto data = RandomBytes(64 * kN, 104);
  std::vector<const uint8_t*> ptrs(kN);
  for (size_t i = 0; i < kN; ++i) {
    ptrs[i] = data.data() + i * 64;
  }
  StateArray ref(kN);
  kernels::Sha1Chunk64BatchScalar(ptrs.data(), kN, ref.data());

  auto check = [&](const char* name, void (*batch)(const uint8_t* const*, size_t,
                                                   uint32_t (*)[5])) {
    StateArray got(kN);
    batch(ptrs.data(), kN, got.data());
    for (size_t i = 0; i < kN; ++i) {
      for (int s = 0; s < 5; ++s) {
        ASSERT_EQ(got.at(i, s), ref.at(i, s)) << name << " chunk " << i;
      }
    }
  };
  check("swar", kernels::Sha1Chunk64BatchSwar);
  if (kernels::DetectCpuFeatures().avx2 && kernels::Avx2Compiled()) {
    check("avx2", kernels::Sha1Chunk64BatchAvx2);
  }
  if (kernels::DetectCpuFeatures().sha_ni && kernels::Sha1ShaNiCompiled()) {
    check("sha-ni", kernels::Sha1Chunk64BatchShaNi);
  }
}

TEST_F(KernelEquivalenceTest, Sha1PublicApiAcrossTiers) {
  auto data = RandomBytes(4096, 105);
  kernels::ForceTier(Tier::kScalar);
  Sha1Digest ref_full = Sha1::Hash(data);
  Sha1Digest ref_chunk = Sha1::HashChunk64(data.data());
  for (Tier tier : BindableTiers()) {
    kernels::ForceTier(tier);
    EXPECT_EQ(Sha1::Hash(data), ref_full) << kernels::TierName(tier);
    EXPECT_EQ(Sha1::HashChunk64(data.data()), ref_chunk) << kernels::TierName(tier);
    // The fast path equals the streaming path for 64-byte input.
    EXPECT_EQ(Sha1::HashChunk64(data.data()),
              Sha1::Hash(std::span<const uint8_t>(data).first(64)));
  }
}

TEST_F(KernelEquivalenceTest, RollingBulkAllTiers) {
  for (size_t window : {size_t{1}, size_t{3}, size_t{8}, size_t{16}, size_t{63}, size_t{64}}) {
    for (size_t n : {window, window + 1, window + 7, window + 100, size_t{4096}}) {
      if (n < window) {
        continue;
      }
      auto data = RandomBytes(n, 200 + window + n);
      uint64_t pow_w1 = 1;
      for (size_t i = 1; i < window; ++i) {
        pow_w1 *= kernels::kRollingBase;
      }
      const size_t count = n - window + 1;
      std::vector<uint64_t> ref(count);
      kernels::RollingBulkScalar(data.data(), n, window, pow_w1, ref.data());
      std::vector<uint64_t> unrolled(count);
      kernels::RollingBulkUnrolled(data.data(), n, window, pow_w1, unrolled.data());
      ASSERT_EQ(unrolled, ref) << "window " << window << " n " << n;
      for (Tier tier : BindableTiers()) {
        kernels::ForceTier(tier);
        std::vector<uint64_t> got(count);
        kernels::RollingBulk(data.data(), n, window, pow_w1, got.data());
        ASSERT_EQ(got, ref) << kernels::TierName(tier) << " window " << window << " n " << n;
      }
    }
  }
}

// Plants a first-difference at every offset in [0, max] — including word and
// vector boundary straddles — and checks all variants agree with scalar.
TEST_F(KernelEquivalenceTest, MatchForwardAllTiers) {
  constexpr size_t kMax = 97;
  auto a = RandomBytes(kMax, 300);
  for (size_t diff = 0; diff <= kMax; ++diff) {
    std::vector<uint8_t> b = a;
    if (diff < kMax) {
      b[diff] ^= 0x40;
    }
    size_t ref = kernels::MatchForwardScalar(a.data(), b.data(), kMax);
    ASSERT_EQ(ref, diff);
    EXPECT_EQ(kernels::MatchForwardSwar(a.data(), b.data(), kMax), ref);
    if (kernels::DetectCpuFeatures().avx2 && kernels::Avx2Compiled()) {
      EXPECT_EQ(kernels::MatchForwardAvx2(a.data(), b.data(), kMax), ref);
    }
    for (Tier tier : BindableTiers()) {
      kernels::ForceTier(tier);
      EXPECT_EQ(kernels::MatchForward(a.data(), b.data(), kMax), ref)
          << kernels::TierName(tier) << " diff at " << diff;
    }
  }
  EXPECT_EQ(kernels::MatchForwardSwar(a.data(), a.data(), 0), 0u);
}

TEST_F(KernelEquivalenceTest, MatchBackwardAllTiers) {
  constexpr size_t kMax = 97;
  auto a = RandomBytes(kMax, 301);
  for (size_t diff = 0; diff <= kMax; ++diff) {
    // diff = number of matching bytes at the tail.
    std::vector<uint8_t> b = a;
    if (diff < kMax) {
      b[kMax - diff - 1] ^= 0x40;
    }
    const uint8_t* a_end = a.data() + kMax;
    const uint8_t* b_end = b.data() + kMax;
    size_t ref = kernels::MatchBackwardScalar(a_end, b_end, kMax);
    ASSERT_EQ(ref, diff);
    EXPECT_EQ(kernels::MatchBackwardSwar(a_end, b_end, kMax), ref);
    if (kernels::DetectCpuFeatures().avx2 && kernels::Avx2Compiled()) {
      EXPECT_EQ(kernels::MatchBackwardAvx2(a_end, b_end, kMax), ref);
    }
    for (Tier tier : BindableTiers()) {
      kernels::ForceTier(tier);
      EXPECT_EQ(kernels::MatchBackward(a_end, b_end, kMax), ref)
          << kernels::TierName(tier) << " tail match " << diff;
    }
  }
  EXPECT_EQ(kernels::MatchBackwardSwar(a.data(), a.data(), 0), 0u);
}

TEST_F(KernelEquivalenceTest, MemEqualAllTiers) {
  for (size_t len : {size_t{0}, size_t{1}, size_t{7}, size_t{8}, size_t{15}, size_t{16},
                     size_t{31}, size_t{32}, size_t{33}, size_t{64}, size_t{100}}) {
    auto a = RandomBytes(len + 1, 400 + len);
    std::vector<uint8_t> b(a.begin(), a.begin() + static_cast<ptrdiff_t>(len));
    // Equal case, then a flip at every position.
    for (size_t flip = 0; flip <= len; ++flip) {
      std::vector<uint8_t> c = b;
      bool expect_equal = true;
      if (flip < len) {
        c[flip] ^= 0x01;
        expect_equal = false;
      }
      EXPECT_EQ(kernels::MemEqualScalar(a.data(), c.data(), len), expect_equal);
      EXPECT_EQ(kernels::MemEqualSwar(a.data(), c.data(), len), expect_equal);
      if (kernels::DetectCpuFeatures().avx2 && kernels::Avx2Compiled()) {
        EXPECT_EQ(kernels::MemEqualAvx2(a.data(), c.data(), len), expect_equal);
      }
      for (Tier tier : BindableTiers()) {
        kernels::ForceTier(tier);
        EXPECT_EQ(kernels::MemEqual(a.data(), c.data(), len), expect_equal)
            << kernels::TierName(tier) << " len " << len << " flip " << flip;
      }
    }
  }
}

// Tier selection must never change the *bytes* of an encoded delta or a
// decoded page, and fingerprints must be tier-invariant (they feed the
// cross-node registry, where mixed-hardware clusters must agree).
TEST_F(KernelEquivalenceTest, DeltaBytesIdenticalAcrossTiers) {
  auto base = RandomBytes(4096, 500);
  std::vector<uint8_t> target = base;
  Rng rng(501);
  for (int i = 0; i < 40; ++i) {
    target[rng.Below(target.size())] = static_cast<uint8_t>(rng.Next());
  }

  kernels::ForceTier(Tier::kScalar);
  std::vector<uint8_t> ref_delta = DeltaEncode(base, target);
  std::vector<uint8_t> ref_out = DeltaDecode(base, ref_delta);
  ASSERT_EQ(ref_out, target);

  for (Tier tier : BindableTiers()) {
    kernels::ForceTier(tier);
    EXPECT_EQ(DeltaEncode(base, target), ref_delta) << kernels::TierName(tier);
    EXPECT_EQ(DeltaDecode(base, ref_delta), target) << kernels::TierName(tier);
  }
}

}  // namespace
}  // namespace medes
