#include "platform/metrics.h"

#include <gtest/gtest.h>

namespace medes {
namespace {

RunMetrics MakeMetrics() {
  RunMetrics m;
  m.per_function.resize(10);
  return m;
}

TEST(MetricsTest, EmptyRunIsSafe) {
  RunMetrics m = MakeMetrics();
  EXPECT_EQ(m.TotalColdStarts(), 0u);
  EXPECT_EQ(m.TotalRequests(), 0u);
  EXPECT_DOUBLE_EQ(m.MeanMemoryMb(), 0.0);
  EXPECT_DOUBLE_EQ(m.MedianMemoryMb(), 0.0);
  EXPECT_DOUBLE_EQ(m.MeanSandboxesInMemory(), 0.0);
}

TEST(MetricsTest, ColdStartAggregation) {
  RunMetrics m = MakeMetrics();
  m.per_function[0].cold_starts = 3;
  m.per_function[4].cold_starts = 7;
  EXPECT_EQ(m.TotalColdStarts(), 10u);
}

TEST(MetricsTest, MemoryTimelineStatistics) {
  RunMetrics m = MakeMetrics();
  for (double v : {10.0, 20.0, 90.0}) {
    MemorySample s;
    s.used_mb = v;
    s.sandboxes = static_cast<uint64_t>(v);
    m.memory_timeline.push_back(s);
  }
  EXPECT_DOUBLE_EQ(m.MeanMemoryMb(), 40.0);
  EXPECT_DOUBLE_EQ(m.MedianMemoryMb(), 20.0);
  EXPECT_DOUBLE_EQ(m.MeanSandboxesInMemory(), 40.0);
}

TEST(MetricsTest, FunctionPercentile) {
  RunMetrics m = MakeMetrics();
  for (int i = 1; i <= 100; ++i) {
    m.per_function[2].e2e_ms.Record(i);
  }
  EXPECT_DOUBLE_EQ(m.FunctionE2ePercentileMs(2, 0.5), 50.0);
  EXPECT_DOUBLE_EQ(m.FunctionE2ePercentileMs(2, 0.999), 100.0);
}

TEST(MetricsTest, ImprovementFactorsMatchedStreams) {
  RunMetrics a = MakeMetrics(), b = MakeMetrics();
  for (int i = 0; i < 5; ++i) {
    RequestRecord r;
    r.function = 0;
    r.arrival = SimTime{i};
    r.e2e = SimDuration{100};
    a.requests.push_back(r);
    r.e2e = SimDuration{250};
    b.requests.push_back(r);
  }
  auto factors = ImprovementFactors(a, b);
  ASSERT_EQ(factors.size(), 5u);
  for (double f : factors) {
    EXPECT_DOUBLE_EQ(f, 2.5);
  }
}

TEST(MetricsTest, FunctionPercentileExtremesAndEmpty) {
  RunMetrics m = MakeMetrics();
  // Empty recorder: percentile is defined as 0 at any p.
  EXPECT_DOUBLE_EQ(m.FunctionE2ePercentileMs(3, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(m.FunctionE2ePercentileMs(3, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(m.FunctionE2ePercentileMs(3, 1.0), 0.0);
  for (int i = 1; i <= 100; ++i) {
    m.per_function[3].e2e_ms.Record(i);
  }
  // p=0 pins to the minimum sample, p=1 to the maximum.
  EXPECT_DOUBLE_EQ(m.FunctionE2ePercentileMs(3, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(m.FunctionE2ePercentileMs(3, 1.0), 100.0);
}

TEST(MetricsTest, ImprovementFactorsRejectLengthMismatch) {
  RunMetrics a = MakeMetrics(), b = MakeMetrics();
  RequestRecord r;
  r.function = 0;
  r.arrival = SimTime{1};
  r.e2e = SimDuration{10};
  a.requests.push_back(r);
  a.requests.push_back(r);
  b.requests.push_back(r);  // one run has more requests than the other
  EXPECT_THROW(ImprovementFactors(a, b), std::invalid_argument);
  EXPECT_THROW(ImprovementFactors(b, a), std::invalid_argument);
}

TEST(MetricsTest, ImprovementFactorsSkipZeroLatencyRequests) {
  RunMetrics a = MakeMetrics(), b = MakeMetrics();
  RequestRecord r;
  r.function = 0;
  r.arrival = SimTime{1};
  r.e2e = SimDuration{0};  // degenerate record: excluded rather than dividing by zero
  a.requests.push_back(r);
  r.e2e = SimDuration{50};
  b.requests.push_back(r);
  EXPECT_TRUE(ImprovementFactors(a, b).empty());
}

TEST(MetricsTest, StartTypeToStringRoundTrip) {
  for (StartType type : {StartType::kWarm, StartType::kDedup, StartType::kCold}) {
    const auto parsed = StartTypeFromString(ToString(type));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, type);
  }
  EXPECT_FALSE(StartTypeFromString("lukewarm").has_value());
  EXPECT_FALSE(StartTypeFromString("").has_value());
  EXPECT_FALSE(StartTypeFromString("Warm").has_value());
}

TEST(MetricsTest, ImprovementFactorsRejectMisalignment) {
  RunMetrics a = MakeMetrics(), b = MakeMetrics();
  RequestRecord r;
  r.function = 0;
  r.arrival = SimTime{1};
  r.e2e = SimDuration{10};
  a.requests.push_back(r);
  r.arrival = SimTime{2};  // different arrival time => different trace
  b.requests.push_back(r);
  EXPECT_THROW(ImprovementFactors(a, b), std::invalid_argument);
  b.requests.push_back(r);
  EXPECT_THROW(ImprovementFactors(a, b), std::invalid_argument);
}

TEST(MetricsTest, FunctionMetricsTotals) {
  FunctionMetrics f;
  f.warm_starts = 5;
  f.dedup_starts = 3;
  f.cold_starts = 2;
  EXPECT_EQ(f.TotalRequests(), 10u);
}

}  // namespace
}  // namespace medes
