#include "memstate/image.h"

#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "chunking/redundancy.h"
#include "memstate/library_pool.h"
#include "memstate/profiles.h"
#include "memstate/tokens.h"

namespace medes {
namespace {

constexpr size_t kTestScale = 16384;  // 16 KiB per represented MB

TEST(TokenDictionaryTest, TokensAreDistinctAndDeterministic) {
  TokenDictionary a(1, 256), b(1, 256);
  std::set<std::vector<uint8_t>> unique;
  for (size_t i = 0; i < 256; ++i) {
    auto ta = a.Token(i);
    auto tb = b.Token(i);
    EXPECT_TRUE(std::equal(ta.begin(), ta.end(), tb.begin()));
    unique.emplace(ta.begin(), ta.end());
  }
  EXPECT_EQ(unique.size(), 256u);
}

TEST(TokenDictionaryTest, IndexWrapsAround) {
  TokenDictionary d(2, 16);
  auto a = d.Token(3);
  auto b = d.Token(19);
  EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
}

TEST(ProfilesTest, TableTwoValues) {
  // Spot-check against the paper's Table 2.
  const FunctionProfile& vanilla = ProfileByName("Vanilla");
  EXPECT_EQ(vanilla.exec_time, FromMillis(150));
  EXPECT_DOUBLE_EQ(vanilla.memory_mb, 17.0);
  const FunctionProfile& rnn = ProfileByName("RNNModel");
  EXPECT_DOUBLE_EQ(rnn.memory_mb, 90.0);
  EXPECT_EQ(FunctionBenchProfiles().size(), 10u);
}

TEST(ProfilesTest, IdsMatchIndices) {
  const auto& profiles = FunctionBenchProfiles();
  for (size_t i = 0; i < profiles.size(); ++i) {
    EXPECT_EQ(profiles[i].id, static_cast<int>(i));
  }
}

TEST(ProfilesTest, UnknownNameThrows) {
  EXPECT_THROW(ProfileByName("NoSuchFunction"), std::out_of_range);
}

TEST(ProfilesTest, LibraryFootprintBelowTotal) {
  for (const auto& p : FunctionBenchProfiles()) {
    EXPECT_LT(LibraryFootprintMb(p), p.memory_mb)
        << p.name << " must leave room for heap and stack";
  }
}

TEST(LibraryPoolTest, BlobsAreDeterministicAndCached) {
  LibraryPool pool(1, kTestScale);
  auto a = pool.Blob("numpy");
  auto b = pool.Blob("numpy");
  EXPECT_EQ(a.data(), b.data());  // cached
  LibraryPool pool2(1, kTestScale);
  auto c = pool2.Blob("numpy");
  ASSERT_EQ(a.size(), c.size());
  EXPECT_EQ(std::memcmp(a.data(), c.data(), a.size()), 0);
}

TEST(LibraryPoolTest, DifferentLibrariesDiffer) {
  LibraryPool pool(1, kTestScale);
  auto a = pool.Blob("numpy");
  auto b = pool.Blob("torch");
  EXPECT_NE(a.size(), b.size());
}

TEST(LibraryPoolTest, ScaledBytesPageAligned) {
  LibraryPool pool(1, kTestScale);
  EXPECT_EQ(pool.ScaledBytes(1.0) % kPageSize, 0u);
  EXPECT_EQ(pool.ScaledBytes(0.1) % kPageSize, 0u);
  EXPECT_GT(pool.ScaledBytes(0.1), 0u);
}

class ImageTest : public ::testing::Test {
 protected:
  LibraryPool pool_{42, kTestScale};
};

TEST_F(ImageTest, ImageIsPageAlignedAndSegmented) {
  const auto& profile = ProfileByName("LinAlg");
  MemoryImage image = BuildSandboxImage(profile, pool_, {.instance_seed = 1});
  EXPECT_EQ(image.SizeBytes() % kPageSize, 0u);
  EXPECT_GT(image.NumPages(), 10u);
  EXPECT_DOUBLE_EQ(image.represented_mb(), profile.memory_mb);
  // Segments tile the image exactly.
  size_t cursor = 0;
  for (const Segment& seg : image.segments()) {
    EXPECT_EQ(seg.offset, cursor);
    cursor += seg.size;
  }
  EXPECT_EQ(cursor, image.SizeBytes());
}

TEST_F(ImageTest, SameSeedSameImage) {
  const auto& profile = ProfileByName("Vanilla");
  MemoryImage a = BuildSandboxImage(profile, pool_, {.instance_seed = 7});
  MemoryImage b = BuildSandboxImage(profile, pool_, {.instance_seed = 7});
  ASSERT_EQ(a.SizeBytes(), b.SizeBytes());
  EXPECT_EQ(std::memcmp(a.bytes().data(), b.bytes().data(), a.SizeBytes()), 0);
}

TEST_F(ImageTest, DifferentSeedsDifferButAreSimilar) {
  const auto& profile = ProfileByName("Vanilla");
  // Freshly-loaded sandboxes (the Section 2 measurement setting): heaps have
  // barely diverged.
  MemoryImage a = BuildSandboxImage(profile, pool_, FreshImageOptions(1));
  MemoryImage b = BuildSandboxImage(profile, pool_, FreshImageOptions(2));
  ASSERT_EQ(a.SizeBytes(), b.SizeBytes());
  EXPECT_NE(std::memcmp(a.bytes().data(), b.bytes().data(), a.SizeBytes()), 0);
  // Same-function sandboxes are highly redundant (paper Fig. 1a).
  double frac = MeasureRedundancy(a.bytes(), b.bytes()).Fraction();
  EXPECT_GT(frac, 0.75);
  // Post-execution images diverge much more (execution dirtiness) but stay
  // partially redundant.
  MemoryImage c = BuildSandboxImage(profile, pool_, {.instance_seed = 1});
  MemoryImage d = BuildSandboxImage(profile, pool_, {.instance_seed = 2});
  double executed = MeasureRedundancy(c.bytes(), d.bytes()).Fraction();
  EXPECT_GT(executed, 0.1);
  EXPECT_LT(executed, frac);
}

TEST_F(ImageTest, CrossFunctionRedundancyExists) {
  // Fig. 1c setting: freshly-loaded sandboxes of *different* functions that
  // share python_runtime + numpy.
  MemoryImage a = BuildSandboxImage(ProfileByName("LinAlg"), pool_, FreshImageOptions(1));
  MemoryImage b = BuildSandboxImage(ProfileByName("ImagePro"), pool_, FreshImageOptions(2));
  double frac = MeasureRedundancy(a.bytes(), b.bytes()).Fraction();
  EXPECT_GT(frac, 0.5);
}

TEST_F(ImageTest, AslrReducesRedundancyModestly) {
  const auto& profile = ProfileByName("LinAlg");
  MemoryImage a1 = BuildSandboxImage(profile, pool_, FreshImageOptions(1, false));
  MemoryImage a2 = BuildSandboxImage(profile, pool_, FreshImageOptions(2, false));
  MemoryImage b1 = BuildSandboxImage(profile, pool_, FreshImageOptions(1, true));
  MemoryImage b2 = BuildSandboxImage(profile, pool_, FreshImageOptions(2, true));
  double no_aslr = MeasureRedundancy(a1.bytes(), a2.bytes()).Fraction();
  double aslr = MeasureRedundancy(b1.bytes(), b2.bytes()).Fraction();
  EXPECT_LT(aslr, no_aslr);
  EXPECT_GT(aslr, no_aslr - 0.25) << "ASLR drop should be modest at 64B chunks";
}

TEST_F(ImageTest, ZeroSegmentIsZero) {
  const auto& profile = ProfileByName("MapReduce");
  MemoryImage image = BuildSandboxImage(profile, pool_, {.instance_seed = 3});
  for (const Segment& seg : image.segments()) {
    if (seg.kind == SegmentKind::kZero) {
      ASSERT_GT(seg.size, 0u);
      for (size_t i = seg.offset; i < seg.offset + seg.size; ++i) {
        ASSERT_EQ(image.bytes()[i], 0) << "offset " << i;
      }
    }
  }
}

TEST_F(ImageTest, UniqueHeapDiffersAcrossInstances) {
  const auto& profile = ProfileByName("MapReduce");
  MemoryImage a = BuildSandboxImage(profile, pool_, {.instance_seed = 1});
  MemoryImage b = BuildSandboxImage(profile, pool_, {.instance_seed = 2});
  const Segment* seg = nullptr;
  for (const Segment& s : a.segments()) {
    if (s.kind == SegmentKind::kUniqueHeap) {
      seg = &s;
    }
  }
  ASSERT_NE(seg, nullptr);
  ASSERT_GT(seg->size, 0u);
  EXPECT_NE(std::memcmp(a.bytes().data() + seg->offset, b.bytes().data() + seg->offset, seg->size),
            0);
}

TEST_F(ImageTest, LibrarySegmentsSharedAcrossFunctions) {
  // The numpy segment bytes of LinAlg and VideoPro come from the same blob
  // (modulo per-instance relocation noise).
  SandboxImageOptions clean;
  clean.dirty_fraction_override = 0.0;  // isolate the shared-blob property
  clean.instance_seed = 1;
  MemoryImage a = BuildSandboxImage(ProfileByName("LinAlg"), pool_, clean);
  clean.instance_seed = 9;
  MemoryImage b = BuildSandboxImage(ProfileByName("VideoPro"), pool_, clean);
  auto find_seg = [](const MemoryImage& img, const std::string& name) -> const Segment* {
    for (const Segment& s : img.segments()) {
      if (s.name == name) {
        return &s;
      }
    }
    return nullptr;
  };
  const Segment* sa = find_seg(a, "numpy");
  const Segment* sb = find_seg(b, "numpy");
  ASSERT_NE(sa, nullptr);
  ASSERT_NE(sb, nullptr);
  ASSERT_EQ(sa->size, sb->size);
  size_t same = 0;
  for (size_t i = 0; i < sa->size; ++i) {
    same += (a.bytes()[sa->offset + i] == b.bytes()[sb->offset + i]) ? 1 : 0;
  }
  EXPECT_GT(static_cast<double>(same) / static_cast<double>(sa->size), 0.95);
}

// All ten functions build valid images — parameterized sweep.
class AllProfilesImageTest : public ::testing::TestWithParam<int> {};

TEST_P(AllProfilesImageTest, Builds) {
  LibraryPool pool(42, kTestScale);
  const auto& profile = FunctionBenchProfiles().at(static_cast<size_t>(GetParam()));
  MemoryImage image = BuildSandboxImage(profile, pool, {.instance_seed = 5});
  EXPECT_GT(image.NumPages(), 0u);
  EXPECT_EQ(image.SizeBytes() % kPageSize, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllFunctions, AllProfilesImageTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace medes
