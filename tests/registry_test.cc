#include "registry/fingerprint_registry.h"

#include <gtest/gtest.h>

#include <vector>

namespace medes {
namespace {

PageFingerprint Fp(std::initializer_list<uint64_t> keys) {
  PageFingerprint fp;
  uint32_t offset = 0;
  for (uint64_t k : keys) {
    fp.chunks.push_back({k, offset});
    offset += 64;
  }
  return fp;
}

TEST(RegistryTest, EmptyLookupReturnsNothing) {
  FingerprintRegistry registry;
  EXPECT_FALSE(registry.FindBasePage(Fp({1, 2, 3}), NodeId{0}).has_value());
}

TEST(RegistryTest, ExactMatchWins) {
  FingerprintRegistry registry;
  registry.InsertBaseSandbox(NodeId{0}, SandboxId{100}, {Fp({1, 2, 3, 4, 5}), Fp({6, 7, 8, 9, 10})});
  auto hit = registry.FindBasePage(Fp({1, 2, 3, 4, 5}), NodeId{0});
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->location.sandbox, SandboxId{100});
  EXPECT_EQ(hit->location.page_index, PageIndex{0});
  EXPECT_EQ(hit->overlap, 5);
}

TEST(RegistryTest, MaxOverlapPreferred) {
  FingerprintRegistry registry;
  registry.InsertBaseSandbox(NodeId{0}, SandboxId{100}, {Fp({1, 2, 3, 90, 91})});
  registry.InsertBaseSandbox(NodeId{0}, SandboxId{200}, {Fp({1, 2, 3, 4, 92})});
  auto hit = registry.FindBasePage(Fp({1, 2, 3, 4, 5}), NodeId{0});
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->location.sandbox, SandboxId{200});
  EXPECT_EQ(hit->overlap, 4);
}

TEST(RegistryTest, TieBreaksPreferLocalNode) {
  FingerprintRegistry registry;
  registry.InsertBaseSandbox(NodeId{3}, SandboxId{100}, {Fp({1, 2, 3, 4, 5})});
  registry.InsertBaseSandbox(NodeId{7}, SandboxId{200}, {Fp({1, 2, 3, 4, 5})});
  auto hit = registry.FindBasePage(Fp({1, 2, 3, 4, 5}), NodeId{7});
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->location.node, NodeId{7});
}

TEST(RegistryTest, TieWithoutLocalIsDeterministic) {
  FingerprintRegistry registry;
  registry.InsertBaseSandbox(NodeId{3}, SandboxId{200}, {Fp({1, 2, 3})});
  registry.InsertBaseSandbox(NodeId{5}, SandboxId{100}, {Fp({1, 2, 3})});
  auto hit = registry.FindBasePage(Fp({1, 2, 3}), NodeId{9});
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->location.sandbox, SandboxId{100}) << "lowest sandbox id wins deterministic ties";
}

TEST(RegistryTest, ExcludeSandboxSkipsOwnPages) {
  FingerprintRegistry registry;
  registry.InsertBaseSandbox(NodeId{0}, SandboxId{100}, {Fp({1, 2, 3, 4, 5})});
  auto hit = registry.FindBasePage(Fp({1, 2, 3, 4, 5}), NodeId{0}, /*exclude_sandbox=*/SandboxId{100});
  EXPECT_FALSE(hit.has_value());
}

TEST(RegistryTest, RemoveBaseSandboxPurgesEntries) {
  FingerprintRegistry registry;
  registry.InsertBaseSandbox(NodeId{0}, SandboxId{100}, {Fp({1, 2, 3})});
  registry.InsertBaseSandbox(NodeId{0}, SandboxId{200}, {Fp({3, 4, 5})});
  registry.RemoveBaseSandbox(SandboxId{100});
  auto hit = registry.FindBasePage(Fp({1, 2, 3}), NodeId{0});
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->location.sandbox, SandboxId{200});
  EXPECT_EQ(hit->overlap, 1);
  EXPECT_FALSE(registry.IsBaseSandbox(SandboxId{100}));
  EXPECT_TRUE(registry.IsBaseSandbox(SandboxId{200}));
}

TEST(RegistryTest, PerKeyLocationCap) {
  FingerprintRegistry registry({.max_locations_per_key = 2});
  registry.InsertBaseSandbox(NodeId{0}, SandboxId{100}, {Fp({42})});
  registry.InsertBaseSandbox(NodeId{0}, SandboxId{200}, {Fp({42})});
  registry.InsertBaseSandbox(NodeId{0}, SandboxId{300}, {Fp({42})});
  RegistryStats stats = registry.stats();
  EXPECT_EQ(stats.num_keys, 1u);
  EXPECT_EQ(stats.num_entries, 2u);
}

TEST(RegistryTest, RefcountLifecycle) {
  FingerprintRegistry registry;
  registry.InsertBaseSandbox(NodeId{0}, SandboxId{100}, {Fp({1})});
  EXPECT_EQ(registry.RefCount(SandboxId{100}), 0);
  registry.Ref(SandboxId{100});
  registry.Ref(SandboxId{100});
  EXPECT_EQ(registry.RefCount(SandboxId{100}), 2);
  registry.Unref(SandboxId{100});
  EXPECT_EQ(registry.RefCount(SandboxId{100}), 1);
  registry.Unref(SandboxId{100});
  registry.Unref(SandboxId{100});  // extra unref is clamped
  EXPECT_EQ(registry.RefCount(SandboxId{100}), 0);
  // Refs on unknown sandboxes are ignored.
  registry.Ref(SandboxId{999});
  EXPECT_EQ(registry.RefCount(SandboxId{999}), 0);
}

TEST(RegistryTest, StatsTrackLookups) {
  FingerprintRegistry registry;
  registry.InsertBaseSandbox(NodeId{0}, SandboxId{100}, {Fp({1, 2})});
  registry.FindBasePage(Fp({1, 9}), NodeId{0});
  registry.FindBasePage(Fp({8, 9}), NodeId{0});
  RegistryStats stats = registry.stats();
  EXPECT_EQ(stats.lookups, 2u);
  EXPECT_EQ(stats.key_hits, 1u);
  EXPECT_GT(stats.ApproxMemoryBytes(), 0u);
}

TEST(RegistryTest, MultiplePagesSameSandbox) {
  FingerprintRegistry registry;
  std::vector<PageFingerprint> fps = {Fp({1, 2}), Fp({2, 3}), Fp({3, 4})};
  registry.InsertBaseSandbox(NodeId{1}, SandboxId{100}, fps);
  auto hit = registry.FindBasePage(Fp({3, 4}), NodeId{1});
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->location.page_index, PageIndex{2});
}

TEST(RegistryTest, EmptyFingerprintPagesNotInserted) {
  FingerprintRegistry registry;
  registry.InsertBaseSandbox(NodeId{0}, SandboxId{100}, {PageFingerprint{}, Fp({5})});
  RegistryStats stats = registry.stats();
  EXPECT_EQ(stats.num_entries, 1u);
}

}  // namespace
}  // namespace medes
