#include "sim/simulation.h"

#include <gtest/gtest.h>

#include <functional>
#include <vector>

namespace medes {
namespace {

// Every contract test runs against both engines: the calendar queue must be
// indistinguishable from the legacy heap through the public API.
class SimulationTest : public ::testing::TestWithParam<SimEngine> {
 protected:
  Simulation sim{GetParam()};
};

INSTANTIATE_TEST_SUITE_P(Engines, SimulationTest,
                         ::testing::Values(SimEngine::kCalendar, SimEngine::kHeap),
                         [](const auto& info) { return ToString(info.param); });

TEST_P(SimulationTest, EventsFireInTimeOrder) {
  std::vector<int> order;
  sim.Schedule(SimTime{30}, [&] { order.push_back(3); });
  sim.Schedule(SimTime{10}, [&] { order.push_back(1); });
  sim.Schedule(SimTime{20}, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST_P(SimulationTest, EqualTimesFifoByScheduleOrder) {
  std::vector<int> order;
  sim.Schedule(SimTime{5}, [&] { order.push_back(1); });
  sim.Schedule(SimTime{5}, [&] { order.push_back(2); });
  sim.Schedule(SimTime{5}, [&] { order.push_back(3); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_P(SimulationTest, NowAdvancesWithEvents) {
  SimTime seen{-1};
  sim.Schedule(SimTime{42}, [&] { seen = sim.Now(); });
  sim.Run();
  EXPECT_EQ(seen, SimTime{42});
  EXPECT_EQ(sim.Now(), SimTime{42});
}

TEST_P(SimulationTest, ScheduleAfterUsesCurrentTime) {
  SimTime seen{-1};
  sim.Schedule(SimTime{10}, [&] {
    sim.ScheduleAfter(SimDuration{5}, [&] { seen = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(seen, SimTime{15});
}

TEST_P(SimulationTest, CancelPreventsExecution) {
  bool fired = false;
  EventId id = sim.Schedule(SimTime{10}, [&] { fired = true; });
  sim.Cancel(id);
  sim.Run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.events_processed(), 0u);
}

TEST_P(SimulationTest, CancelIsIdempotent) {
  EventId id = sim.Schedule(SimTime{10}, [] {});
  sim.Cancel(id);
  sim.Cancel(id);
  sim.Run();
}

TEST_P(SimulationTest, CancelFromWithinEvent) {
  bool fired = false;
  EventId later = sim.Schedule(SimTime{20}, [&] { fired = true; });
  sim.Schedule(SimTime{10}, [&] { sim.Cancel(later); });
  sim.Run();
  EXPECT_FALSE(fired);
}

// Edge pin: an event may cancel a *same-timestamp* event scheduled after it.
// Under the calendar engine the victim sits in the already-sorted cursor
// bucket right behind the firing index — the laziest possible moment to
// cancel — and must still be suppressed.
TEST_P(SimulationTest, CancelSameTimePendingEvent) {
  std::vector<int> order;
  EventId victim = 0;
  sim.Schedule(SimTime{10}, [&] {
    order.push_back(1);
    sim.Cancel(victim);
  });
  sim.Schedule(SimTime{10}, [&] { order.push_back(2); });
  victim = sim.Schedule(SimTime{10}, [&] { order.push_back(3); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.events_processed(), 2u);
}

TEST_P(SimulationTest, RunUntilStopsEarly) {
  std::vector<int> order;
  sim.Schedule(SimTime{10}, [&] { order.push_back(1); });
  sim.Schedule(SimTime{100}, [&] { order.push_back(2); });
  sim.RunUntil(SimTime{50});
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(sim.Now(), SimTime{50});
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

// Edge pin: RunUntil's bound is inclusive — an event at exactly `until`
// fires; one microsecond later stays queued.
TEST_P(SimulationTest, RunUntilBoundaryIsInclusive) {
  std::vector<int> order;
  sim.Schedule(SimTime{50}, [&] { order.push_back(1); });
  sim.Schedule(SimTime{51}, [&] { order.push_back(2); });
  sim.RunUntil(SimTime{50});
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(sim.Now(), SimTime{50});
  EXPECT_FALSE(sim.Empty());
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

// Edge pin: scheduling after an early-stopped RunUntil works even at times
// the engine's cursor has already swept past in wall position (the calendar
// engine folds such entries into the cursor bucket).
TEST_P(SimulationTest, ScheduleAfterEarlyStop) {
  std::vector<int> order;
  sim.Schedule(SimTime{10}, [&] { order.push_back(1); });
  sim.RunUntil(SimTime{1000});
  EXPECT_EQ(sim.Now(), SimTime{1000});
  sim.Schedule(SimTime{1001}, [&] { order.push_back(2); });
  sim.Schedule(SimTime{5000}, [&] { order.push_back(3); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

// Edge pin: events_processed counts fired events only — cancellations are
// invisible to it no matter when they happen.
TEST_P(SimulationTest, EventsProcessedExcludesCancelled) {
  EventId a = sim.Schedule(SimTime{10}, [] {});
  sim.Schedule(SimTime{20}, [] {});
  EventId c = sim.Schedule(SimTime{30}, [] {});
  sim.Cancel(a);
  sim.Schedule(SimTime{15}, [&] { sim.Cancel(c); });
  sim.Run();
  EXPECT_EQ(sim.events_processed(), 2u);
  EXPECT_EQ(sim.stats().cancelled, 2u);
  EXPECT_EQ(sim.stats().fired, 2u);
}

TEST_P(SimulationTest, PastSchedulingRejected) {
  sim.Schedule(SimTime{10}, [] {});
  sim.Run();
  EXPECT_THROW(sim.Schedule(SimTime{5}, [] {}), std::invalid_argument);
}

TEST_P(SimulationTest, RecursiveSchedulingChain) {
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 100) {
      sim.ScheduleAfter(SimDuration{1}, tick);
    }
  };
  sim.Schedule(SimTime{0}, tick);
  sim.Run();
  EXPECT_EQ(count, 100);
  EXPECT_EQ(sim.Now(), SimTime{99});
}

TEST_P(SimulationTest, EmptyReflectsPendingWork) {
  EXPECT_TRUE(sim.Empty());
  EventId id = sim.Schedule(SimTime{10}, [] {});
  EXPECT_FALSE(sim.Empty());
  sim.Cancel(id);
  EXPECT_TRUE(sim.Empty());
}

// A stale handle must never cancel an unrelated event that recycled the same
// arena slot (generation tags) or a recycled heap id.
TEST_P(SimulationTest, StaleHandleCannotCancelRecycledSlot) {
  EventId old_id = sim.Schedule(SimTime{10}, [] {});
  sim.Cancel(old_id);
  // Recycle aggressively: the calendar engine reuses the freed slot for the
  // very next schedule.
  bool fired = false;
  std::vector<EventId> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(sim.Schedule(SimTime{20 + i}, [&] { fired = true; }));
  }
  sim.Cancel(old_id);  // stale: must be a no-op
  sim.Run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.events_processed(), 8u);
}

// Callbacks larger than the inline small-buffer budget must still work (heap
// fallback path in the arena).
TEST_P(SimulationTest, LargeCallbacksSupported) {
  struct Big {
    uint64_t payload[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  };
  Big big;
  uint64_t sum = 0;
  sim.Schedule(SimTime{10}, [&sum, big] {
    for (uint64_t v : big.payload) {
      sum += v;
    }
  });
  sim.Run();
  EXPECT_EQ(sum, 36u);
}

// Timers far beyond the calendar window (the 15-minute keep-dedup regime)
// must fire correctly after queue-empty stretches: the wheel jumps instead of
// stepping through millions of empty buckets.
TEST_P(SimulationTest, LongRangeTimersFire) {
  std::vector<SimTime> fired;
  sim.Schedule(SimTime{1}, [&] { fired.push_back(sim.Now()); });
  sim.Schedule(SimTime{} + 15 * kMinute, [&] { fired.push_back(sim.Now()); });
  sim.Schedule(SimTime{} + 2 * kHour, [&] { fired.push_back(sim.Now()); });
  sim.Run();
  EXPECT_EQ(fired, (std::vector<SimTime>{SimTime{1}, SimTime{} + 15 * kMinute,
                                       SimTime{} + 2 * kHour}));
  EXPECT_EQ(sim.Now(), SimTime{} + 2 * kHour);
}

// Reserved seqs pin the tie-break order no matter when events physically
// enter the queue: scheduling a same-timestamp batch lazily (each event
// scheduling its successor, as the streamed trace feed does) must fire in
// reserved order, interleaved correctly with later plain Schedule calls.
TEST_P(SimulationTest, ReservedSeqsPinEqualTimeOrder) {
  std::vector<int> order;
  const uint64_t base = sim.ReserveSeqBlock(3);
  // Plain schedules issued *after* the reservation get later seqs, so at an
  // equal timestamp they fire after every reserved event.
  sim.Schedule(SimTime{10}, [&] { order.push_back(99); });
  std::function<void(int)> chain = [&](int i) {
    sim.ScheduleWithSeq(SimTime{10}, base + static_cast<uint64_t>(i), [&order, &chain, i] {
      if (i + 1 < 3) {
        chain(i + 1);
      }
      order.push_back(i);
    });
  };
  chain(0);
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 99}));
}

// Tiny wheel geometry forces constant window slides and overflow migrations;
// the contract must hold regardless of geometry.
TEST(SimulationGeometryTest, TinyWheelPreservesOrder) {
  SimulationOptions opts;
  opts.bucket_width_log2 = 2;  // 4 us buckets
  opts.num_buckets_log2 = 2;   // 4-bucket wheel => 16 us window
  Simulation sim(opts);
  std::vector<SimTime> fired;
  for (int64_t t_us : {900, 5, 300, 17, 16, 64, 3, 1000, 31}) {
    const SimTime t{t_us};
    sim.Schedule(t, [&fired, &sim] { fired.push_back(sim.Now()); });
  }
  sim.Run();
  EXPECT_EQ(fired,
            (std::vector<SimTime>{SimTime{3}, SimTime{5}, SimTime{16}, SimTime{17},
                                  SimTime{31}, SimTime{64}, SimTime{300}, SimTime{900},
                                  SimTime{1000}}));
  EXPECT_GT(sim.stats().overflow_migrations, 0u);
}

TEST(SimulationStatsTest, CountersTrackActivity) {
  Simulation sim;
  EventId a = sim.Schedule(SimTime{10}, [] {});
  sim.Schedule(SimTime{20}, [] {});
  sim.Cancel(a);
  sim.Run();
  const SimStats s = sim.stats();
  EXPECT_EQ(s.scheduled, 2u);
  EXPECT_EQ(s.fired, 1u);
  EXPECT_EQ(s.cancelled, 1u);
  EXPECT_EQ(s.max_live, 2u);
}

}  // namespace
}  // namespace medes
