#include "sim/simulation.h"

#include <gtest/gtest.h>

#include <vector>

namespace medes {
namespace {

TEST(SimulationTest, EventsFireInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.Schedule(30, [&] { order.push_back(3); });
  sim.Schedule(10, [&] { order.push_back(1); });
  sim.Schedule(20, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(SimulationTest, EqualTimesFifoByScheduleOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.Schedule(5, [&] { order.push_back(1); });
  sim.Schedule(5, [&] { order.push_back(2); });
  sim.Schedule(5, [&] { order.push_back(3); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulationTest, NowAdvancesWithEvents) {
  Simulation sim;
  SimTime seen = -1;
  sim.Schedule(42, [&] { seen = sim.Now(); });
  sim.Run();
  EXPECT_EQ(seen, 42);
  EXPECT_EQ(sim.Now(), 42);
}

TEST(SimulationTest, ScheduleAfterUsesCurrentTime) {
  Simulation sim;
  SimTime seen = -1;
  sim.Schedule(10, [&] {
    sim.ScheduleAfter(5, [&] { seen = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(seen, 15);
}

TEST(SimulationTest, CancelPreventsExecution) {
  Simulation sim;
  bool fired = false;
  EventId id = sim.Schedule(10, [&] { fired = true; });
  sim.Cancel(id);
  sim.Run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.events_processed(), 0u);
}

TEST(SimulationTest, CancelIsIdempotent) {
  Simulation sim;
  EventId id = sim.Schedule(10, [] {});
  sim.Cancel(id);
  sim.Cancel(id);
  sim.Run();
}

TEST(SimulationTest, CancelFromWithinEvent) {
  Simulation sim;
  bool fired = false;
  EventId later = sim.Schedule(20, [&] { fired = true; });
  sim.Schedule(10, [&] { sim.Cancel(later); });
  sim.Run();
  EXPECT_FALSE(fired);
}

TEST(SimulationTest, RunUntilStopsEarly) {
  Simulation sim;
  std::vector<int> order;
  sim.Schedule(10, [&] { order.push_back(1); });
  sim.Schedule(100, [&] { order.push_back(2); });
  sim.RunUntil(50);
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(sim.Now(), 50);
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SimulationTest, PastSchedulingRejected) {
  Simulation sim;
  sim.Schedule(10, [] {});
  sim.Run();
  EXPECT_THROW(sim.Schedule(5, [] {}), std::invalid_argument);
}

TEST(SimulationTest, RecursiveSchedulingChain) {
  Simulation sim;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 100) {
      sim.ScheduleAfter(1, tick);
    }
  };
  sim.Schedule(0, tick);
  sim.Run();
  EXPECT_EQ(count, 100);
  EXPECT_EQ(sim.Now(), 99);
}

TEST(SimulationTest, EmptyReflectsPendingWork) {
  Simulation sim;
  EXPECT_TRUE(sim.Empty());
  EventId id = sim.Schedule(10, [] {});
  EXPECT_FALSE(sim.Empty());
  sim.Cancel(id);
  EXPECT_TRUE(sim.Empty());
}

}  // namespace
}  // namespace medes
