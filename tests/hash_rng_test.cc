#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/hash.h"
#include "common/rng.h"

namespace medes {
namespace {

TEST(Fnv1aTest, KnownValues) {
  // FNV-1a of empty input is the offset basis.
  EXPECT_EQ(Fnv1a64({}), 0xcbf29ce484222325ull);
  // FNV-1a of "a".
  const uint8_t a[] = {'a'};
  EXPECT_EQ(Fnv1a64({a, 1}), 0xaf63dc4c8601ec8cull);
}

TEST(Fnv1aTest, SeedChangesResult) {
  const uint8_t data[] = {1, 2, 3};
  EXPECT_NE(Fnv1a64({data, 3}, 1), Fnv1a64({data, 3}, 2));
}

TEST(MixBitsTest, DistinctInputsWellSeparated) {
  std::set<uint64_t> outputs;
  for (uint64_t i = 0; i < 1000; ++i) {
    outputs.insert(MixBits(i));
  }
  EXPECT_EQ(outputs.size(), 1000u);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, BelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
  EXPECT_EQ(rng.Below(0), 0u);
  EXPECT_EQ(rng.Below(1), 0u);
}

TEST(RngTest, RangeInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.Range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(13);
  const double rate = 4.0;
  double sum = 0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    sum += rng.Exponential(rate);
  }
  EXPECT_NEAR(sum / kN, 1.0 / rate, 0.01);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    hits += rng.Bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(RngTest, ForkIsIndependentStream) {
  Rng a(21);
  Rng child = a.Fork();
  // The fork must not replay the parent's stream.
  Rng b(21);
  b.Next();  // parent consumed one value during Fork
  EXPECT_NE(child.Next(), b.Next());
}

TEST(SplitMixTest, Deterministic) {
  SplitMix64 a(5), b(5);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_EQ(a.Next(), b.Next());
}

}  // namespace
}  // namespace medes
