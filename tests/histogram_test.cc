#include "common/histogram.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace medes {
namespace {

TEST(SampleRecorderTest, EmptyIsSafe) {
  SampleRecorder r;
  EXPECT_TRUE(r.Empty());
  EXPECT_EQ(r.Count(), 0u);
  EXPECT_EQ(r.Mean(), 0.0);
  EXPECT_EQ(r.Percentile(0.99), 0.0);
  EXPECT_EQ(r.Min(), 0.0);
  EXPECT_EQ(r.Max(), 0.0);
}

TEST(SampleRecorderTest, BasicStats) {
  SampleRecorder r;
  for (double v : {4.0, 1.0, 3.0, 2.0, 5.0}) {
    r.Record(v);
  }
  EXPECT_EQ(r.Count(), 5u);
  EXPECT_DOUBLE_EQ(r.Sum(), 15.0);
  EXPECT_DOUBLE_EQ(r.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(r.Min(), 1.0);
  EXPECT_DOUBLE_EQ(r.Max(), 5.0);
  EXPECT_DOUBLE_EQ(r.Median(), 3.0);
}

TEST(SampleRecorderTest, NearestRankPercentiles) {
  SampleRecorder r;
  for (int i = 1; i <= 100; ++i) {
    r.Record(i);
  }
  EXPECT_DOUBLE_EQ(r.Percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(r.Percentile(0.01), 1.0);
  EXPECT_DOUBLE_EQ(r.Percentile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(r.Percentile(0.99), 99.0);
  EXPECT_DOUBLE_EQ(r.Percentile(1.0), 100.0);
}

TEST(SampleRecorderTest, PercentileAfterMoreRecords) {
  // The lazy sort cache must be invalidated by new samples.
  SampleRecorder r;
  r.Record(1.0);
  EXPECT_DOUBLE_EQ(r.Percentile(1.0), 1.0);
  r.Record(10.0);
  EXPECT_DOUBLE_EQ(r.Percentile(1.0), 10.0);
}

TEST(SampleRecorderTest, PercentileClampsP) {
  SampleRecorder r;
  r.Record(7.0);
  EXPECT_DOUBLE_EQ(r.Percentile(-1.0), 7.0);
  EXPECT_DOUBLE_EQ(r.Percentile(2.0), 7.0);
}

TEST(BucketHistogramTest, CountsLandInRightBuckets) {
  BucketHistogram h(0, 10, 5);  // buckets of width 2
  h.Record(0.5);
  h.Record(1.9);
  h.Record(2.0);
  h.Record(9.9);
  EXPECT_EQ(h.BucketCount(0), 2u);
  EXPECT_EQ(h.BucketCount(1), 1u);
  EXPECT_EQ(h.BucketCount(4), 1u);
  EXPECT_EQ(h.TotalCount(), 4u);
}

TEST(BucketHistogramTest, OutOfRangeClampsToEdges) {
  BucketHistogram h(0, 10, 5);
  h.Record(-5);
  h.Record(100);
  EXPECT_EQ(h.BucketCount(0), 1u);
  EXPECT_EQ(h.BucketCount(4), 1u);
}

TEST(BucketHistogramTest, BucketLow) {
  BucketHistogram h(10, 20, 5);
  EXPECT_DOUBLE_EQ(h.BucketLow(0), 10.0);
  EXPECT_DOUBLE_EQ(h.BucketLow(4), 18.0);
}

TEST(BucketHistogramTest, RejectsBadRange) {
  EXPECT_THROW(BucketHistogram(0, 0, 5), std::invalid_argument);
  EXPECT_THROW(BucketHistogram(0, 10, 0), std::invalid_argument);
}

}  // namespace
}  // namespace medes
