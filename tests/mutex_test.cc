// The annotated mutex wrappers (common/mutex.h) and the runtime lock-rank
// checker. Violations are observed through the handler hook instead of death
// tests: an installed handler that returns lets execution continue, so a
// single process can assert on many inversions.
#include "common/mutex.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#if defined(__SANITIZE_THREAD__)
#define MEDES_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define MEDES_TSAN_BUILD 1
#endif
#endif

#ifdef MEDES_TSAN_BUILD
// Several tests below acquire locks in deliberately inverted order — that is
// the behavior under test (the runtime lock-rank checker must report it).
// TSan's own potential-deadlock detector would flag those same acquisitions,
// so it is disabled for this binary only; data-race detection stays on.
extern "C" const char* __tsan_default_options() {
  return "detect_deadlocks=0";
}
#endif

namespace medes {
namespace {

// Enables lock debugging and captures violations for the duration of a test,
// restoring whatever state the process started with (CI runs the suite with
// MEDES_DEBUG_LOCKS=1, so the previous state is not necessarily "off").
class MutexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = LockDebuggingEnabled();
    SetLockDebugging(true);
    previous_handler_ = SetLockOrderViolationHandler(
        [this](const std::string& message) { violations_.push_back(message); });
  }

  void TearDown() override {
    SetLockOrderViolationHandler(previous_handler_);
    SetLockDebugging(was_enabled_);
  }

  std::vector<std::string> violations_;

 private:
  bool was_enabled_ = false;
  LockOrderViolationHandler previous_handler_;
};

TEST_F(MutexTest, MutexProvidesExclusion) {
  Mutex mu("test counter");
  int counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter, 4000);
  EXPECT_EQ(HeldLockCount(), 0u);
}

TEST_F(MutexTest, TryLockFailsWhenHeldElsewhere) {
  Mutex mu("try target");
  mu.Lock();
  std::atomic<bool> acquired{true};
  std::thread other([&] {
    acquired = mu.TryLock();
    if (acquired) {
      mu.Unlock();
    }
  });
  other.join();
  EXPECT_FALSE(acquired);
  mu.Unlock();

  // Uncontended TryLock succeeds and is tracked like a normal acquisition.
  ASSERT_TRUE(mu.TryLock());
  EXPECT_EQ(HeldLockCount(), 1u);
  mu.Unlock();
  EXPECT_EQ(HeldLockCount(), 0u);
}

TEST_F(MutexTest, SharedMutexAllowsConcurrentReaders) {
  SharedMutex mu("shared state");
  ReaderLock first(mu);
  std::atomic<bool> second_reader_ok{false};
  std::thread reader([&] {
    ReaderLock second(mu);
    second_reader_ok = true;
  });
  reader.join();
  EXPECT_TRUE(second_reader_ok);
}

TEST_F(MutexTest, WriterExcludesReaders) {
  SharedMutex mu("shared state");
  int value = 0;
  std::atomic<bool> reader_done{false};
  std::thread reader;
  {
    WriterLock writer(mu);
    reader = std::thread([&] {
      ReaderLock lock(mu);
      reader_done = true;
    });
    // The reader must block until the writer releases; give it a moment to
    // park, mutate, then check it has not observed the intermediate state.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_FALSE(reader_done);
    value = 42;
  }
  // Join (never detach): a detached reader could outlive this frame and race
  // on the stack-allocated mutex and flag.
  reader.join();
  EXPECT_TRUE(reader_done);
  ReaderLock lock(mu);
  EXPECT_EQ(value, 42);
}

TEST_F(MutexTest, CondVarWaitReacquiresMutex) {
  Mutex mu("cv state");
  CondVar cv;
  bool ready = false;
  std::thread waiter([&] {
    MutexLock lock(mu);
    while (!ready) {
      cv.Wait(mu);
    }
    // The mutex is held again here; the held-lock stack must agree.
    EXPECT_EQ(HeldLockCount(), 1u);
  });
  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.NotifyOne();
  waiter.join();
}

TEST_F(MutexTest, AscendingRankOrderIsClean) {
  Mutex pool("pool", LockRank::kPoolQueue);
  SharedMutex shard("shard", LockRank::kRegistryShard);
  Mutex cache("cache", LockRank::kRdmaCache);
  Mutex metrics("metrics", LockRank::kMetrics);
  {
    MutexLock a(pool);
    ReaderLock b(shard);
    MutexLock c(cache);
    MutexLock d(metrics);
    EXPECT_EQ(HeldLockCount(), 4u);
  }
  EXPECT_EQ(HeldLockCount(), 0u);
  EXPECT_TRUE(violations_.empty()) << violations_.front();
}

TEST_F(MutexTest, InvertedAcquisitionReportsBothLocks) {
  Mutex low("registry shard lock", LockRank::kRegistryShard);
  Mutex high("metrics sink lock", LockRank::kMetrics);
  {
    MutexLock a(high);
    MutexLock b(low);  // rank 3 after rank 6: inversion
  }
  ASSERT_EQ(violations_.size(), 1u);
  EXPECT_NE(violations_[0].find("lock-order violation"), std::string::npos);
  EXPECT_NE(violations_[0].find("registry shard lock"), std::string::npos);
  EXPECT_NE(violations_[0].find("metrics sink lock"), std::string::npos);
}

TEST_F(MutexTest, EqualRankNestingIsAViolation) {
  SharedMutex a("shard a", LockRank::kRegistryShard);
  SharedMutex b("shard b", LockRank::kRegistryShard);
  {
    ReaderLock first(a);
    ReaderLock second(b);  // same rank while the first is held
  }
  ASSERT_EQ(violations_.size(), 1u);
  EXPECT_NE(violations_[0].find("shard a"), std::string::npos);
  EXPECT_NE(violations_[0].find("shard b"), std::string::npos);
}

TEST_F(MutexTest, UnrankedLocksOptOutOfOrdering) {
  Mutex metrics("metrics", LockRank::kMetrics);
  Mutex plain;  // kUnranked
  {
    MutexLock a(metrics);
    MutexLock b(plain);
    EXPECT_EQ(HeldLockCount(), 2u);
  }
  EXPECT_TRUE(violations_.empty()) << violations_.front();
}

TEST_F(MutexTest, ViolationListsHeldStackOldestFirst) {
  Mutex pool("pool", LockRank::kPoolQueue);
  Mutex metrics("metrics", LockRank::kMetrics);
  Mutex cache("cache", LockRank::kRdmaCache);
  {
    MutexLock a(pool);
    MutexLock b(metrics);
    MutexLock c(cache);  // rank 5 after rank 6
  }
  ASSERT_EQ(violations_.size(), 1u);
  const std::string& message = violations_[0];
  // Both held locks appear, in acquisition order.
  size_t pool_pos = message.find("\"pool\"");
  size_t metrics_pos = message.rfind("\"metrics\"");
  ASSERT_NE(pool_pos, std::string::npos);
  ASSERT_NE(metrics_pos, std::string::npos);
  EXPECT_LT(pool_pos, metrics_pos);
}

TEST_F(MutexTest, DisabledCheckerStaysSilent) {
  SetLockDebugging(false);
  Mutex low("low", LockRank::kPoolQueue);
  Mutex high("high", LockRank::kMetrics);
  {
    MutexLock a(high);
    MutexLock b(low);
    EXPECT_EQ(HeldLockCount(), 0u);  // nothing tracked while disabled
  }
  EXPECT_TRUE(violations_.empty());
}

TEST_F(MutexTest, RankNamesAreHumanReadable) {
  EXPECT_EQ(std::string(ToString(LockRank::kPoolQueue)), "rank 1: pool queue");
  EXPECT_NE(std::string(ToString(LockRank::kMetrics)).find("metrics"), std::string::npos);
}

}  // namespace
}  // namespace medes
