#include "controller/medes_controller.h"

#include <gtest/gtest.h>

namespace medes {
namespace {

ClusterOptions SmallCluster() {
  ClusterOptions opts;
  opts.num_nodes = 2;
  opts.node_memory_mb = 4096;
  opts.bytes_per_mb = 8192;
  return opts;
}

class ControllerTest : public ::testing::Test {
 protected:
  ControllerTest()
      : cluster_(SmallCluster()),
        fabric_({}, [this](const PageLocation& loc) { return cluster_.ReadBasePage(loc); }),
        agent_(cluster_, registry_, fabric_, {}) {}

  MedesController MakeController(MedesControllerOptions opts = {}) {
    return MedesController(cluster_, opts);
  }

  Sandbox& WarmSandbox(const std::string& name, SimTime now = SimTime{}) {
    Sandbox& sb = cluster_.Spawn(ProfileByName(name), NodeId{0}, now);
    cluster_.MarkWarm(sb, now);
    return sb;
  }

  Cluster cluster_;
  FingerprintRegistry registry_;
  RdmaFabric fabric_;
  DedupAgent agent_;
};

// A loose latency target makes dedup the memory-optimal answer.
MedesControllerOptions LooseLatency() {
  MedesControllerOptions opts;
  opts.alpha = 100.0;
  return opts;
}

TEST_F(ControllerTest, TightLatencyTargetKeepsLoneSandboxWarm) {
  // With alpha = 2.5 and a single idle sandbox, the only dedup split (W=0,
  // D=1) has S = sD >> alpha * sW -> the solver keeps it warm.
  MedesController controller = MakeController();
  Sandbox& sb = WarmSandbox("Vanilla");
  EXPECT_EQ(controller.OnIdleExpiry(sb, SimTime{} + kMinute), IdleDecision::kKeepWarm);
}

TEST_F(ControllerTest, FirstDedupDecisionDesignatesBase) {
  MedesController controller = MakeController(LooseLatency());
  Sandbox& sb = WarmSandbox("Vanilla");
  // No arrivals recorded -> lambda_max = 0 -> dedup is safe; but there is no
  // base for Vanilla yet (or anywhere), so the first decision must be base
  // designation.
  EXPECT_EQ(controller.OnIdleExpiry(sb, SimTime{} + kMinute), IdleDecision::kDesignateBase);
}

TEST_F(ControllerTest, AfterBaseExistsDecisionIsDedup) {
  MedesController controller = MakeController(LooseLatency());
  Sandbox& base = WarmSandbox("Vanilla");
  agent_.DesignateBase(base);
  Sandbox& sb = WarmSandbox("Vanilla");
  EXPECT_EQ(controller.OnIdleExpiry(sb, SimTime{} + kMinute), IdleDecision::kDedup);
}

TEST_F(ControllerTest, BaseSandboxItselfKeptWarm) {
  MedesController controller = MakeController(LooseLatency());
  Sandbox& base = WarmSandbox("Vanilla");
  agent_.DesignateBase(base);
  EXPECT_EQ(controller.OnIdleExpiry(base, SimTime{} + kMinute), IdleDecision::kKeepWarm);
}

TEST_F(ControllerTest, MemoryPressureForcesDedup) {
  // Default alpha (2.5) would keep the sandbox warm, but the node being
  // nearly full triggers the aggressive-dedup fallback.
  MedesController controller = MakeController();
  Sandbox& base = WarmSandbox("Vanilla");
  agent_.DesignateBase(base);
  Sandbox& sb = WarmSandbox("Vanilla");
  // Fill node 0 beyond the pressure threshold (85% of 4096 MB).
  for (int i = 0; i < 40; ++i) {
    cluster_.Spawn(ProfileByName("RNNModel"), NodeId{0}, SimTime{});
  }
  ASSERT_GT(cluster_.node(NodeId{0}).used_mb, 0.85 * 4096);
  EXPECT_EQ(controller.OnIdleExpiry(sb, SimTime{} + kMinute), IdleDecision::kDedup);
}

TEST_F(ControllerTest, HighArrivalRateKeepsSandboxesWarm) {
  MedesControllerOptions opts;
  opts.alpha = 1.05;  // very tight latency target
  MedesController controller = MakeController(opts);
  Sandbox& base = WarmSandbox("Vanilla");
  agent_.DesignateBase(base);
  Sandbox& sb = WarmSandbox("Vanilla");
  // Hammer the rate tracker: far more than one warm sandbox can serve.
  for (int i = 0; i < 600; ++i) {
    controller.RecordArrival(sb.function, SimTime{} + i * 100 * kMillisecond);
  }
  EXPECT_EQ(controller.OnIdleExpiry(sb, SimTime{} + kMinute), IdleDecision::kKeepWarm);
}

TEST_F(ControllerTest, BasePromotionAtThreshold) {
  MedesControllerOptions opts = LooseLatency();
  opts.base_promotion_threshold = 2;  // tiny T for the test
  MedesController controller = MakeController(opts);
  Sandbox& base = WarmSandbox("Vanilla");
  agent_.DesignateBase(base);
  // Create 3 dedup sandboxes -> D/B = 3 > 2 -> next decision promotes.
  for (int i = 0; i < 3; ++i) {
    Sandbox& sb = WarmSandbox("Vanilla");
    agent_.DedupOp(sb, SimTime{});
  }
  Sandbox& next = WarmSandbox("Vanilla");
  EXPECT_EQ(controller.OnIdleExpiry(next, SimTime{} + kMinute), IdleDecision::kDesignateBase);
}

TEST_F(ControllerTest, EstimateInputsUsesDefaultsThenMeasurements) {
  MedesController controller = MakeController();
  const FunctionProfile& profile = ProfileByName("LinAlg");
  MedesPolicyInputs before = controller.EstimateInputs(profile.id, SimTime{});
  EXPECT_DOUBLE_EQ(before.warm_mb, profile.memory_mb);
  EXPECT_DOUBLE_EQ(before.dedup_mb, 0.5 * profile.memory_mb);

  // Feed a dedup measurement: 100 pages, 60 saved.
  DedupOpResult dedup;
  dedup.pages_total = 100;
  dedup.pages_deduped = 50;
  dedup.saved_bytes = 60 * kPageSize;
  controller.RecordDedupResult(profile.id, dedup);
  MedesPolicyInputs after = controller.EstimateInputs(profile.id, SimTime{});
  double total_mb = 100.0 * kPageSize / 8192.0;
  double saved_mb = 60.0 * kPageSize / 8192.0;
  EXPECT_NEAR(after.dedup_mb, total_mb - saved_mb, 1e-9);

  RestoreOpResult restore;
  restore.total_time = 250 * kMillisecond;
  controller.RecordRestoreResult(profile.id, restore);
  MedesPolicyInputs measured = controller.EstimateInputs(profile.id, SimTime{});
  EXPECT_NEAR(measured.dedup_start_s, 0.25, 1e-9);
}

TEST_F(ControllerTest, RateTrackingFeedsLambda) {
  MedesController controller = MakeController();
  const FunctionProfile& profile = ProfileByName("Vanilla");
  for (int i = 0; i < 30; ++i) {
    controller.RecordArrival(profile.id, SimTime{} + i * kSecond);
  }
  MedesPolicyInputs in = controller.EstimateInputs(profile.id, SimTime{} + 30 * kSecond);
  EXPECT_GT(in.lambda_max, 0.5);
}

TEST_F(ControllerTest, MemoryCapShareProportionalToRates) {
  MedesControllerOptions opts;
  opts.objective = PolicyObjective::kMemory;
  opts.cluster_memory_cap_mb = 1000;
  MedesController controller = MakeController(opts);
  // Vanilla gets 3x the arrivals of LinAlg.
  for (int i = 0; i < 30; ++i) {
    controller.RecordArrival(0, SimTime{} + i * kSecond);
    if (i % 3 == 0) {
      controller.RecordArrival(1, SimTime{} + i * kSecond);
    }
  }
  double v = controller.MemoryCapShareMb(0, SimTime{} + 30 * kSecond);
  double l = controller.MemoryCapShareMb(1, SimTime{} + 30 * kSecond);
  EXPECT_NEAR(v / l, 3.0, 0.2);
  EXPECT_LT(v + l, 1000.0 + 1e-9);
}

TEST_F(ControllerTest, MemoryCapShareEqualWhenNoTraffic) {
  MedesControllerOptions opts;
  opts.cluster_memory_cap_mb = 1000;
  MedesController controller = MakeController(opts);
  EXPECT_NEAR(controller.MemoryCapShareMb(0, SimTime{}), 100.0, 1e-9);
}

TEST_F(ControllerTest, PerFunctionOverridesChangeCriticality) {
  // Vanilla is critical (tight alpha), LinAlg best-effort (loose alpha).
  MedesControllerOptions opts;
  opts.alpha = 2.5;
  opts.function_overrides = {{ProfileByName("LinAlg").id, 1000.0}};
  MedesController controller = MakeController(opts);
  EXPECT_DOUBLE_EQ(controller.AlphaFor(ProfileByName("Vanilla").id), 2.5);
  EXPECT_DOUBLE_EQ(controller.AlphaFor(ProfileByName("LinAlg").id), 1000.0);

  Sandbox& vb = WarmSandbox("Vanilla");
  agent_.DesignateBase(vb);
  Sandbox& lb = WarmSandbox("LinAlg");
  agent_.DesignateBase(lb);
  // A lone idle sandbox: the critical function stays warm, the best-effort
  // one is deduplicated.
  Sandbox& v = WarmSandbox("Vanilla");
  Sandbox& l = WarmSandbox("LinAlg");
  EXPECT_EQ(controller.OnIdleExpiry(v, SimTime{} + kMinute), IdleDecision::kKeepWarm);
  EXPECT_EQ(controller.OnIdleExpiry(l, SimTime{} + kMinute), IdleDecision::kDedup);
}

TEST_F(ControllerTest, CombinedObjectiveRespectsBothBounds) {
  MedesControllerOptions opts;
  opts.objective = PolicyObjective::kCombined;
  opts.alpha = 1000.0;
  opts.cluster_memory_cap_mb = 40;  // tight cap forces dedup
  MedesController controller = MakeController(opts);
  Sandbox& base = WarmSandbox("Vanilla");
  agent_.DesignateBase(base);
  Sandbox& sb = WarmSandbox("Vanilla");
  WarmSandbox("Vanilla");
  EXPECT_EQ(controller.OnIdleExpiry(sb, SimTime{} + kMinute), IdleDecision::kDedup);
}

TEST_F(ControllerTest, MemoryObjectiveDedupsUnderTightCap) {
  MedesControllerOptions opts;
  opts.objective = PolicyObjective::kMemory;
  opts.cluster_memory_cap_mb = 30;  // tiny: Vanilla warm costs 17 MB each
  MedesController controller = MakeController(opts);
  Sandbox& base = WarmSandbox("Vanilla");
  agent_.DesignateBase(base);
  Sandbox& a = WarmSandbox("Vanilla");
  WarmSandbox("Vanilla");
  EXPECT_EQ(controller.OnIdleExpiry(a, SimTime{} + kMinute), IdleDecision::kDedup);
}

}  // namespace
}  // namespace medes
