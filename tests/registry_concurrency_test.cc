// Multi-threaded stress for the sharded FingerprintRegistry: concurrent
// inserts, batched lookups, refcount churn, and removals. Run under
// -fsanitize=thread (cmake -DMEDES_SANITIZE=thread) to verify the striped
// locking — the CI matrix does.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "registry/fingerprint_registry.h"

namespace medes {
namespace {

PageFingerprint Fp(std::initializer_list<uint64_t> keys) {
  PageFingerprint fp;
  uint32_t offset = 0;
  for (uint64_t k : keys) {
    fp.chunks.push_back({k, offset});
    offset += 64;
  }
  return fp;
}

// Deterministic per-sandbox fingerprints: sandbox s page p holds keys
// {s*16+p, 1000+p} — a private key plus a popular cross-sandbox key.
std::vector<PageFingerprint> SandboxFingerprints(SandboxId s) {
  std::vector<PageFingerprint> fps;
  for (uint64_t p = 0; p < 8; ++p) {
    fps.push_back(Fp({s.value() * 16 + p, 1000 + p}));
  }
  return fps;
}

TEST(RegistryConcurrencyTest, ConcurrentInsertLookupRemove) {
  FingerprintRegistry registry({.max_locations_per_key = 64, .num_shards = 8});
  constexpr int kWriters = 4;
  constexpr int kReaders = 4;
  constexpr int kSandboxesPerWriter = 24;
  std::atomic<bool> stop{false};

  std::vector<std::thread> threads;
  // Writers: insert a run of sandboxes, then remove every odd one.
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&registry, w] {
      const uint64_t base = 1 + static_cast<uint64_t>(w) * 1000;
      for (uint64_t s = base; s < base + kSandboxesPerWriter; ++s) {
        registry.InsertBaseSandbox(NodeId{w}, SandboxId{s}, SandboxFingerprints(SandboxId{s}));
        registry.Ref(SandboxId{s});
        registry.Unref(SandboxId{s});
      }
      for (uint64_t s = base; s < base + kSandboxesPerWriter; ++s) {
        if (s % 2 == 1) {
          registry.RemoveBaseSandbox(SandboxId{s});
        }
      }
    });
  }
  // Readers: hammer single and batched lookups while the table churns.
  std::atomic<uint64_t> results_seen{0};
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&registry, &stop, &results_seen] {
      std::vector<PageFingerprint> batch;
      for (uint64_t p = 0; p < 8; ++p) {
        batch.push_back(Fp({1000 + p, 3 + p}));
      }
      // do-while: on a loaded single-core host the writers can finish (and
      // set `stop`) before a reader is first scheduled; every reader still
      // contributes at least one iteration so results_seen stays meaningful.
      do {
        auto single = registry.FindBasePages(batch[0], NodeId{0}, kNoSandbox, 4);
        auto many = registry.FindBasePagesBatch(batch, NodeId{0}, kNoSandbox, 4);
        results_seen.fetch_add(single.size() + many.size(), std::memory_order_relaxed);
        (void)registry.stats();
        (void)registry.IsBaseSandbox(SandboxId{1});
      } while (!stop.load(std::memory_order_relaxed));
    });
  }
  for (int w = 0; w < kWriters; ++w) {
    threads[static_cast<size_t>(w)].join();
  }
  stop.store(true);
  for (size_t t = kWriters; t < threads.size(); ++t) {
    threads[t].join();
  }
  EXPECT_GT(results_seen.load(), 0u);

  // Quiesced state: exactly the even sandboxes remain, with their entries.
  RegistryStats stats = registry.stats();
  EXPECT_EQ(stats.num_base_sandboxes,
            static_cast<size_t>(kWriters) * (kSandboxesPerWriter / 2));
  for (int w = 0; w < kWriters; ++w) {
    const uint64_t base = 1 + static_cast<uint64_t>(w) * 1000;
    for (uint64_t s = base; s < base + kSandboxesPerWriter; ++s) {
      EXPECT_EQ(registry.IsBaseSandbox(SandboxId{s}), s % 2 == 0) << "sandbox " << s;
      auto hits = registry.FindBasePages(Fp({s * 16 + 0}), NodeId{0}, kNoSandbox, 4);
      if (s % 2 == 0) {
        ASSERT_EQ(hits.size(), 1u) << "sandbox " << s;
        EXPECT_EQ(hits[0].location.sandbox, SandboxId{s});
      } else {
        EXPECT_TRUE(hits.empty()) << "removed sandbox " << s << " left entries behind";
      }
    }
  }
}

TEST(RegistryConcurrencyTest, BatchLookupMatchesSingleLookups) {
  FingerprintRegistry registry({.num_shards = 4});
  for (uint64_t s = 1; s <= 20; ++s) {
    registry.InsertBaseSandbox(NodeId{static_cast<int32_t>(s % 3)}, SandboxId{s},
                               SandboxFingerprints(SandboxId{s}));
  }
  std::vector<PageFingerprint> queries;
  for (uint64_t p = 0; p < 8; ++p) {
    queries.push_back(Fp({1000 + p, 5 * 16 + p, 777}));
  }
  auto batched = registry.FindBasePagesBatch(queries, /*local_node=*/NodeId{1},
                                             /*exclude_sandbox=*/SandboxId{5}, /*max_results=*/6);
  ASSERT_EQ(batched.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    auto single = registry.FindBasePages(queries[i], NodeId{1}, SandboxId{5}, 6);
    ASSERT_EQ(batched[i].size(), single.size()) << "query " << i;
    for (size_t j = 0; j < single.size(); ++j) {
      EXPECT_EQ(batched[i][j].location, single[j].location) << "query " << i << " rank " << j;
      EXPECT_EQ(batched[i][j].overlap, single[j].overlap) << "query " << i << " rank " << j;
    }
  }
}

TEST(RegistryConcurrencyTest, RemoveIsScopedToOneSandbox) {
  // The reverse index must only strip the removed sandbox's locations, even
  // when many sandboxes share every key.
  FingerprintRegistry registry({.max_locations_per_key = 64, .num_shards = 2});
  for (uint64_t s = 1; s <= 10; ++s) {
    registry.InsertBaseSandbox(NodeId{0}, SandboxId{s}, {Fp({42, 43}), Fp({42, 44})});
  }
  registry.RemoveBaseSandbox(SandboxId{4});
  auto hits = registry.FindBasePages(Fp({42}), NodeId{0}, kNoSandbox, 64);
  EXPECT_EQ(hits.size(), 18u) << "9 sandboxes x 2 pages holding key 42";
  for (const auto& hit : hits) {
    EXPECT_NE(hit.location.sandbox, SandboxId{4});
  }
  RegistryStats stats = registry.stats();
  EXPECT_EQ(stats.num_base_sandboxes, 9u);
}

TEST(RegistryConcurrencyTest, CopyPreservesStateWithFreshLocks) {
  // Chain-replication re-sync copy-assigns registries; the copy must be a
  // deep, independent clone.
  FingerprintRegistry original({.num_shards = 4});
  original.InsertBaseSandbox(NodeId{0}, SandboxId{7}, SandboxFingerprints(SandboxId{7}));
  original.Ref(SandboxId{7});
  FingerprintRegistry copy(original);
  EXPECT_TRUE(copy.IsBaseSandbox(SandboxId{7}));
  EXPECT_EQ(copy.RefCount(SandboxId{7}), 1);
  EXPECT_EQ(copy.stats().num_entries, original.stats().num_entries);
  copy.RemoveBaseSandbox(SandboxId{7});
  EXPECT_FALSE(copy.IsBaseSandbox(SandboxId{7}));
  EXPECT_TRUE(original.IsBaseSandbox(SandboxId{7})) << "copies do not alias the source";
}

}  // namespace
}  // namespace medes
