// Unit tests for causal trace identity (obs/trace_context.h) and the
// critical-path analyzer (obs/critical_path.h): tree reconstruction from
// span ids, the left-to-right attribution sweep and its sum-to-root
// invariant, and the summary aggregation the trace_analysis bench reports.
#include "obs/critical_path.h"

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/obs.h"
#include "obs/trace.h"
#include "obs/trace_context.h"

namespace medes::obs {
namespace {

Span MakeSpan(const char* name, int64_t ts, int64_t dur, uint64_t trace_id, uint64_t span_id,
              uint64_t parent_span_id) {
  Span s;
  s.name = name;
  s.category = "test";
  s.ts = SimTime{ts};
  s.dur = SimDuration{dur};
  s.trace_id = trace_id;
  s.span_id = span_id;
  s.parent_span_id = parent_span_id;
  return s;
}

int64_t SelfOf(const TraceAttribution& attr, const std::string& stage) {
  for (const StageSelf& s : attr.stages) {
    if (s.stage == stage) {
      return s.self_us;
    }
  }
  return -1;
}

int64_t AttributedTotal(const TraceAttribution& attr) {
  int64_t total = 0;
  for (const StageSelf& s : attr.stages) {
    total += s.self_us;
  }
  return total;
}

// ---------------------------------------------------------------------------
// TraceContext derivation
// ---------------------------------------------------------------------------

TEST(TraceContextTest, ChildDerivationIsPureAndDistinct) {
  const TraceContext root{42, 42, 0};
  const TraceContext a = root.Child("stage_a");
  EXPECT_EQ(a.trace_id, 42u);
  EXPECT_EQ(a.parent_span_id, 42u);
  EXPECT_NE(a.span_id, 0u);
  // Pure: same inputs, same id. Distinct: name and ordinal both matter.
  EXPECT_EQ(root.Child("stage_a").span_id, a.span_id);
  EXPECT_NE(root.Child("stage_b").span_id, a.span_id);
  EXPECT_NE(root.Child("stage_a", 1).span_id, a.span_id);
  // Grandchildren chain the parent link.
  const TraceContext grandchild = a.Child("stage_c");
  EXPECT_EQ(grandchild.parent_span_id, a.span_id);
}

TEST(TraceContextTest, UntracedAndDroppedPropagate) {
  const TraceContext untraced;
  EXPECT_FALSE(untraced.sampled());
  EXPECT_FALSE(untraced.dropped());
  EXPECT_FALSE(untraced.Child("x").sampled());

  const TraceContext dropped = TraceContext::Dropped();
  EXPECT_FALSE(dropped.sampled());
  EXPECT_TRUE(dropped.dropped());
  EXPECT_TRUE(dropped.Child("x").dropped());
}

#ifndef MEDES_OBS_DISABLED

TEST(TraceContextTest, MintingIsDeterministicAndSampled) {
  SetTraceEnabled(true);
  SetTraceSampleEvery(1);
  const TraceContext a = MintTraceContext(7);
  const TraceContext b = MintTraceContext(7);
  EXPECT_TRUE(a.sampled());
  EXPECT_EQ(a.trace_id, b.trace_id);
  EXPECT_EQ(a.span_id, a.trace_id);  // root span id is the trace id
  EXPECT_EQ(a.parent_span_id, 0u);
  EXPECT_NE(MintTraceContext(8).trace_id, a.trace_id);
  SetTraceEnabled(false);
  EXPECT_FALSE(MintTraceContext(7).sampled());
}

TEST(TraceContextTest, HeadSamplingIsDeterministicPerSequence) {
  SetTraceEnabled(true);
  SetTraceSampleEvery(4);
  size_t kept = 0;
  for (uint64_t seq = 0; seq < 4000; ++seq) {
    const TraceContext ctx = MintTraceContext(seq);
    EXPECT_TRUE(ctx.sampled() || ctx.dropped());
    EXPECT_EQ(ctx.sampled(), MintTraceContext(seq).sampled()) << seq;
    kept += ctx.sampled() ? 1 : 0;
  }
  // The draw is a hash mod N: expect roughly 1/4, generously bounded.
  EXPECT_GT(kept, 800u);
  EXPECT_LT(kept, 1200u);
  SetTraceSampleEvery(1);
  SetTraceEnabled(false);
}

TEST(TraceContextTest, DroppedContextSuppressesSpans) {
  SetTraceEnabled(true);
  Tracer::Default().Clear();
  {
    ScopedSpan kept("cp/kept", "test", SimTime{1}, 0, TraceContext{9, 9, 0});
    ScopedSpan untraced("cp/untraced", "test", SimTime{2}, 0, TraceContext{});
    ScopedSpan suppressed("cp/suppressed", "test", SimTime{3}, 0, TraceContext::Dropped());
  }
  const auto spans = Tracer::Default().Drain();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_STREQ(spans[0].name, "cp/kept");
  EXPECT_EQ(spans[0].trace_id, 9u);
  EXPECT_STREQ(spans[1].name, "cp/untraced");
  EXPECT_EQ(spans[1].trace_id, 0u);
  SetTraceEnabled(false);
}

#endif  // MEDES_OBS_DISABLED

// ---------------------------------------------------------------------------
// Tree reconstruction
// ---------------------------------------------------------------------------

TEST(CriticalPathTest, BuildsOneTreePerTraceWithCanonicalRoots) {
  const std::vector<Span> spans = {
      MakeSpan("child", 10, 5, 2, 21, 2),
      MakeSpan("root_b", 0, 50, 7, 7, 0),
      MakeSpan("root_a", 0, 100, 2, 2, 0),
      MakeSpan("untraced", 0, 9, 0, 0, 0),  // ignored
  };
  const auto trees = BuildTraceTrees(spans);
  ASSERT_EQ(trees.size(), 2u);  // ascending trace id
  EXPECT_EQ(trees[0].trace_id, 2u);
  EXPECT_EQ(trees[1].trace_id, 7u);
  EXPECT_STREQ(spans[trees[0].nodes[trees[0].root].span].name, "root_a");
  EXPECT_STREQ(spans[trees[1].nodes[trees[1].root].span].name, "root_b");
  ASSERT_EQ(trees[0].nodes[trees[0].root].children.size(), 1u);
  EXPECT_EQ(trees[0].unresolved_parents, 0u);
  EXPECT_EQ(trees[1].unresolved_parents, 0u);
}

TEST(CriticalPathTest, ChildrenAreTimeOrderedWithinParents) {
  const std::vector<Span> spans = {
      MakeSpan("late", 30, 5, 1, 12, 1),
      MakeSpan("early", 5, 5, 1, 11, 1),
      MakeSpan("root", 0, 100, 1, 1, 0),
  };
  const auto trees = BuildTraceTrees(spans);
  ASSERT_EQ(trees.size(), 1u);
  const auto& children = trees[0].nodes[trees[0].root].children;
  ASSERT_EQ(children.size(), 2u);
  EXPECT_STREQ(spans[trees[0].nodes[children[0]].span].name, "early");
  EXPECT_STREQ(spans[trees[0].nodes[children[1]].span].name, "late");
}

TEST(CriticalPathTest, UnresolvedParentsAttachToRootAndAreCounted) {
  const std::vector<Span> spans = {
      MakeSpan("root", 0, 100, 1, 1, 0),
      MakeSpan("orphan", 10, 5, 1, 33, 999),  // parent never recorded
  };
  const auto trees = BuildTraceTrees(spans);
  ASSERT_EQ(trees.size(), 1u);
  EXPECT_EQ(trees[0].unresolved_parents, 1u);
  EXPECT_EQ(trees[0].nodes[trees[0].root].children.size(), 1u);
}

TEST(CriticalPathTest, FindNodeReturnsEarliestMatch) {
  const std::vector<Span> spans = {
      MakeSpan("root", 0, 100, 1, 1, 0),
      MakeSpan("op", 40, 5, 1, 12, 1),
      MakeSpan("op", 10, 5, 1, 11, 1),
  };
  const auto trees = BuildTraceTrees(spans);
  ASSERT_EQ(trees.size(), 1u);
  const auto node = FindNode(spans, trees[0], "op");
  ASSERT_TRUE(node.has_value());
  EXPECT_EQ(spans[trees[0].nodes[*node].span].ts, SimTime{10});
  EXPECT_FALSE(FindNode(spans, trees[0], "missing").has_value());
}

// ---------------------------------------------------------------------------
// Attribution sweep
// ---------------------------------------------------------------------------

TEST(CriticalPathTest, AttributionSumsExactlyToRootDuration) {
  // root [0,100): child_a [10,40), child_b [50,70) with grandchild [55,65).
  const std::vector<Span> spans = {
      MakeSpan("root", 0, 100, 1, 1, 0),
      MakeSpan("child_a", 10, 30, 1, 11, 1),
      MakeSpan("child_b", 50, 20, 1, 12, 1),
      MakeSpan("grandchild", 55, 10, 1, 13, 12),
  };
  const auto trees = BuildTraceTrees(spans);
  ASSERT_EQ(trees.size(), 1u);
  const TraceAttribution attr = AttributeTrace(spans, trees[0]);
  EXPECT_EQ(attr.total_us, 100);
  EXPECT_EQ(AttributedTotal(attr), attr.total_us);  // the invariant
  EXPECT_EQ(SelfOf(attr, "root"), 50);        // 100 - 30 - 20
  EXPECT_EQ(SelfOf(attr, "child_a"), 30);
  EXPECT_EQ(SelfOf(attr, "child_b"), 10);     // 20 - grandchild's 10
  EXPECT_EQ(SelfOf(attr, "grandchild"), 10);
}

TEST(CriticalPathTest, OverlappingSiblingsAreNotDoubleCounted) {
  // Parallel fan-out: both children start at 10; the sweep credits the
  // first (by span id) with [10,60) and clips the second to [60,80).
  const std::vector<Span> spans = {
      MakeSpan("root", 0, 100, 1, 1, 0),
      MakeSpan("fan_a", 10, 50, 1, 11, 1),
      MakeSpan("fan_b", 10, 70, 1, 12, 1),
  };
  const auto trees = BuildTraceTrees(spans);
  const TraceAttribution attr = AttributeTrace(spans, trees[0]);
  EXPECT_EQ(AttributedTotal(attr), 100);
  EXPECT_EQ(SelfOf(attr, "fan_a"), 50);
  EXPECT_EQ(SelfOf(attr, "fan_b"), 20);  // clipped to the uncovered tail
  EXPECT_EQ(SelfOf(attr, "root"), 30);
}

TEST(CriticalPathTest, ChildrenAreClippedToTheParentWindow) {
  // The child claims [90,130) but the root ends at 100.
  const std::vector<Span> spans = {
      MakeSpan("root", 0, 100, 1, 1, 0),
      MakeSpan("runaway", 90, 40, 1, 11, 1),
  };
  const auto trees = BuildTraceTrees(spans);
  const TraceAttribution attr = AttributeTrace(spans, trees[0]);
  EXPECT_EQ(AttributedTotal(attr), 100);
  EXPECT_EQ(SelfOf(attr, "runaway"), 10);
  EXPECT_EQ(SelfOf(attr, "root"), 90);
}

TEST(CriticalPathTest, InstantsOccupyNoTime) {
  std::vector<Span> spans = {
      MakeSpan("root", 0, 100, 1, 1, 0),
      MakeSpan("mark", 50, 0, 1, 11, 1),
  };
  spans[1].dur = kInstantDuration;
  const auto trees = BuildTraceTrees(spans);
  const TraceAttribution attr = AttributeTrace(spans, trees[0]);
  EXPECT_EQ(AttributedTotal(attr), 100);
  EXPECT_EQ(SelfOf(attr, "root"), 100);
  EXPECT_EQ(SelfOf(attr, "mark"), -1);  // never visited: zero-width window
}

TEST(CriticalPathTest, SubtreeAttributionReRootsAtAnInteriorOp) {
  const std::vector<Span> spans = {
      MakeSpan("request", 0, 1000, 1, 1, 0),
      MakeSpan("restore_op", 100, 200, 1, 11, 1),
      MakeSpan("restore/ws_fetch", 100, 50, 1, 12, 11),
  };
  const auto trees = BuildTraceTrees(spans);
  const auto node = FindNode(spans, trees[0], "restore_op");
  ASSERT_TRUE(node.has_value());
  const TraceAttribution attr = AttributeSubtree(spans, trees[0], *node);
  EXPECT_EQ(attr.total_us, 200);
  EXPECT_EQ(AttributedTotal(attr), 200);
  EXPECT_EQ(SelfOf(attr, "restore/ws_fetch"), 50);
  EXPECT_EQ(SelfOf(attr, "restore_op"), 150);
  EXPECT_EQ(SelfOf(attr, "request"), -1);  // outside the subtree
}

// ---------------------------------------------------------------------------
// Summaries
// ---------------------------------------------------------------------------

TEST(CriticalPathTest, SummarizeAggregatesStagesAndRanksSlowest) {
  std::vector<TraceAttribution> attrs(3);
  attrs[0] = {101, 100, {{"net", 40}, {"work", 60}}};
  attrs[1] = {102, 300, {{"net", 100}, {"work", 200}}};
  attrs[2] = {103, 200, {{"work", 200}}};
  const AttributionSummary summary = Summarize(attrs, 2);
  EXPECT_EQ(summary.traces, 3u);
  EXPECT_EQ(summary.total_us, 600);
  EXPECT_EQ(summary.p50_total_us, 200);
  EXPECT_EQ(summary.p99_total_us, 300);
  ASSERT_EQ(summary.stages.size(), 2u);  // name-sorted
  EXPECT_EQ(summary.stages[0].stage, "net");
  EXPECT_EQ(summary.stages[0].traces, 2u);
  EXPECT_EQ(summary.stages[0].total_us, 140);
  EXPECT_EQ(summary.stages[1].stage, "work");
  EXPECT_EQ(summary.stages[1].p99_us, 200);
  double fraction_sum = 0;
  for (const StageStats& s : summary.stages) {
    fraction_sum += s.fraction;
  }
  EXPECT_DOUBLE_EQ(fraction_sum, 1.0);
  // Slowest-first, capped at top_k.
  ASSERT_EQ(summary.top_slowest.size(), 2u);
  EXPECT_EQ(attrs[summary.top_slowest[0]].trace_id, 102u);
  EXPECT_EQ(attrs[summary.top_slowest[1]].trace_id, 103u);
}

TEST(CriticalPathTest, SummarizeOfNothingIsEmpty) {
  const AttributionSummary summary = Summarize({}, 10);
  EXPECT_EQ(summary.traces, 0u);
  EXPECT_EQ(summary.total_us, 0);
  EXPECT_TRUE(summary.stages.empty());
  EXPECT_TRUE(summary.top_slowest.empty());
}

}  // namespace
}  // namespace medes::obs
