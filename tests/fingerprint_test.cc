#include "chunking/fingerprint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <set>
#include <stdexcept>
#include <vector>

#include "common/rng.h"

namespace medes {
namespace {

std::vector<uint8_t> RandomBytes(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> out(n);
  for (auto& b : out) {
    b = static_cast<uint8_t>(rng.Next());
  }
  return out;
}

std::set<uint64_t> Keys(const PageFingerprint& fp) {
  std::set<uint64_t> keys;
  for (const auto& c : fp.chunks) {
    keys.insert(c.key);
  }
  return keys;
}

TEST(FingerprintTest, DefaultCardinalityIsFive) {
  PageFingerprinter fp({});
  auto page = RandomBytes(4096, 1);
  PageFingerprint result = fp.FingerprintPage(page);
  EXPECT_EQ(result.Cardinality(), 5u);
}

TEST(FingerprintTest, Deterministic) {
  PageFingerprinter fp({});
  auto page = RandomBytes(4096, 2);
  auto a = fp.FingerprintPage(page);
  auto b = fp.FingerprintPage(page);
  ASSERT_EQ(a.Cardinality(), b.Cardinality());
  EXPECT_EQ(Keys(a), Keys(b));
}

TEST(FingerprintTest, IdenticalPagesIdenticalFingerprints) {
  PageFingerprinter fp({});
  auto page = RandomBytes(4096, 3);
  auto copy = page;
  EXPECT_EQ(Keys(fp.FingerprintPage(page)), Keys(fp.FingerprintPage(copy)));
}

TEST(FingerprintTest, DissimilarPagesShareNoKeys) {
  PageFingerprinter fp({});
  auto a = fp.FingerprintPage(RandomBytes(4096, 4));
  auto b = fp.FingerprintPage(RandomBytes(4096, 5));
  std::set<uint64_t> ka = Keys(a), kb = Keys(b);
  std::vector<uint64_t> common;
  std::set_intersection(ka.begin(), ka.end(), kb.begin(), kb.end(), std::back_inserter(common));
  EXPECT_TRUE(common.empty());
}

TEST(FingerprintTest, SimilarPagesShareMostKeys) {
  PageFingerprinter fp({});
  auto page = RandomBytes(4096, 6);
  auto similar = page;
  // One 8-byte pointer rewrite.
  std::memset(similar.data() + 1234, 0xee, 8);
  std::set<uint64_t> ka = Keys(fp.FingerprintPage(page));
  std::set<uint64_t> kb = Keys(fp.FingerprintPage(similar));
  std::vector<uint64_t> common;
  std::set_intersection(ka.begin(), ka.end(), kb.begin(), kb.end(), std::back_inserter(common));
  EXPECT_GE(common.size(), 4u) << "a single edit should leave most sampled chunks intact";
}

TEST(FingerprintTest, ValueSamplingSurvivesShift) {
  // The crucial property vs Difference Engine: shifting content by a few
  // bytes must keep (most of) the fingerprint — selection is content-defined.
  PageFingerprinter fp({});
  auto content = RandomBytes(4080, 7);
  std::vector<uint8_t> page_a = content;
  page_a.resize(4096, 0);
  std::vector<uint8_t> page_b(16, 0x11);  // shift content by 16 bytes
  page_b.insert(page_b.end(), content.begin(), content.begin() + 4080);
  std::set<uint64_t> ka = Keys(fp.FingerprintPage(page_a));
  std::set<uint64_t> kb = Keys(fp.FingerprintPage(page_b));
  std::vector<uint64_t> common;
  std::set_intersection(ka.begin(), ka.end(), kb.begin(), kb.end(), std::back_inserter(common));
  EXPECT_GE(common.size(), 3u);
}

TEST(FingerprintTest, RandomOffsetsModeDoesNotSurviveShift) {
  FingerprintOptions options;
  options.mode = SamplingMode::kRandomOffsets;
  PageFingerprinter fp(options);
  auto content = RandomBytes(4080, 8);
  std::vector<uint8_t> page_a = content;
  page_a.resize(4096, 0);
  std::vector<uint8_t> page_b(16, 0x22);
  page_b.insert(page_b.end(), content.begin(), content.begin() + 4080);
  std::set<uint64_t> ka = Keys(fp.FingerprintPage(page_a));
  std::set<uint64_t> kb = Keys(fp.FingerprintPage(page_b));
  std::vector<uint64_t> common;
  std::set_intersection(ka.begin(), ka.end(), kb.begin(), kb.end(), std::back_inserter(common));
  EXPECT_LE(common.size(), 1u);
}

TEST(FingerprintTest, UniformPageStillGetsFingerprint) {
  PageFingerprinter fp({});
  std::vector<uint8_t> page(4096, 0x00);
  PageFingerprint result = fp.FingerprintPage(page);
  EXPECT_FALSE(result.Empty());
}

TEST(FingerprintTest, ShortPageEmpty) {
  PageFingerprinter fp({});
  auto tiny = RandomBytes(32, 9);
  EXPECT_TRUE(fp.FingerprintPage(tiny).Empty());
}

TEST(FingerprintTest, KeyBitsTruncate) {
  FingerprintOptions options;
  options.key_bits = 16;
  PageFingerprinter fp(options);
  auto result = fp.FingerprintPage(RandomBytes(4096, 10));
  for (const auto& chunk : result.chunks) {
    EXPECT_LT(chunk.key, 1u << 16);
  }
}

TEST(FingerprintTest, InvalidOptionsRejected) {
  FingerprintOptions bad;
  bad.chunk_size = 0;
  EXPECT_THROW(PageFingerprinter{bad}, std::invalid_argument);
  bad = {};
  bad.cardinality = 0;
  EXPECT_THROW(PageFingerprinter{bad}, std::invalid_argument);
  bad = {};
  bad.key_bits = 0;
  EXPECT_THROW(PageFingerprinter{bad}, std::invalid_argument);
  bad = {};
  bad.key_bits = 65;
  EXPECT_THROW(PageFingerprinter{bad}, std::invalid_argument);
}

TEST(FingerprintTest, FingerprintImageCoversAllPages) {
  PageFingerprinter fp({});
  auto image = RandomBytes(4096 * 7 + 100, 11);  // trailing partial page ignored
  auto fps = fp.FingerprintImage(image, 4096);
  EXPECT_EQ(fps.size(), 7u);
}

TEST(FingerprintTest, OffsetsWithinPage) {
  PageFingerprinter fp({});
  auto result = fp.FingerprintPage(RandomBytes(4096, 12));
  for (const auto& chunk : result.chunks) {
    EXPECT_LE(chunk.offset + 64u, 4096u);
  }
}

// Parameterized sweep over cardinality (the paper's Section 7.8 knob).
class CardinalityTest : public ::testing::TestWithParam<size_t> {};

TEST_P(CardinalityTest, RespectsRequestedCardinality) {
  FingerprintOptions options;
  options.cardinality = GetParam();
  // Widen the sampling mask so enough candidates exist for high cardinality.
  options.sample_mask = 0x7f;
  PageFingerprinter fp(options);
  auto result = fp.FingerprintPage(RandomBytes(4096, 13));
  EXPECT_EQ(result.Cardinality(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Cardinalities, CardinalityTest, ::testing::Values(1, 3, 5, 10, 20));

// Parameterized sweep over chunk size (Section 7.8's other knob).
class ChunkSizeTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ChunkSizeTest, FingerprintsProduced) {
  FingerprintOptions options;
  options.chunk_size = GetParam();
  PageFingerprinter fp(options);
  auto result = fp.FingerprintPage(RandomBytes(4096, 14));
  EXPECT_FALSE(result.Empty());
  for (const auto& chunk : result.chunks) {
    EXPECT_LE(chunk.offset + GetParam(), 4096u);
  }
}

INSTANTIATE_TEST_SUITE_P(ChunkSizes, ChunkSizeTest, ::testing::Values(32, 64, 128, 256));

}  // namespace
}  // namespace medes
