#include "common/sha1.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"

namespace medes {
namespace {

std::vector<uint8_t> Bytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

// FIPS 180-1 / RFC 3174 known-answer tests.
TEST(Sha1Test, EmptyInput) {
  EXPECT_EQ(Sha1::Hash({}).ToHex(), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1Test, Abc) {
  auto data = Bytes("abc");
  EXPECT_EQ(Sha1::Hash(data).ToHex(), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1Test, TwoBlockMessage) {
  auto data = Bytes("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  EXPECT_EQ(Sha1::Hash(data).ToHex(), "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1Test, MillionAs) {
  std::vector<uint8_t> data(1000000, 'a');
  EXPECT_EQ(Sha1::Hash(data).ToHex(), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1Test, QuickBrownFox) {
  auto data = Bytes("The quick brown fox jumps over the lazy dog");
  EXPECT_EQ(Sha1::Hash(data).ToHex(), "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12");
}

TEST(Sha1Test, IncrementalMatchesOneShot) {
  Rng rng(42);
  std::vector<uint8_t> data(100000);
  for (auto& b : data) {
    b = static_cast<uint8_t>(rng.Next());
  }
  // Feed in awkward split sizes that straddle block boundaries.
  Sha1 hasher;
  size_t pos = 0;
  const size_t splits[] = {1, 63, 64, 65, 127, 4096, 9999};
  size_t i = 0;
  while (pos < data.size()) {
    size_t take = std::min(splits[i++ % 7], data.size() - pos);
    hasher.Update({data.data() + pos, take});
    pos += take;
  }
  EXPECT_EQ(hasher.Finish(), Sha1::Hash(data));
}

TEST(Sha1Test, FinishResetsState) {
  Sha1 hasher;
  auto data = Bytes("abc");
  hasher.Update(data);
  Sha1Digest first = hasher.Finish();
  hasher.Update(data);
  Sha1Digest second = hasher.Finish();
  EXPECT_EQ(first, second);
}

TEST(Sha1Test, DistinctInputsDistinctDigests) {
  auto a = Sha1::Hash(Bytes("hello"));
  auto b = Sha1::Hash(Bytes("hellp"));
  EXPECT_NE(a, b);
}

TEST(Sha1Test, Prefix64KnownAnswers) {
  // Big-endian: the returned integer reads like the first 16 hex digits of
  // the digest. SHA-1("abc") = a9993e364706816a ba3e25717850c26c 9cd0d89d.
  EXPECT_EQ(Sha1::Hash(Bytes("abc")).Prefix64(), 0xa9993e364706816aull);
  // SHA-1("") = da39a3ee5e6b4b0d 3255bfef95601890 afd80709.
  EXPECT_EQ(Sha1::Hash(Bytes("")).Prefix64(), 0xda39a3ee5e6b4b0dull);
}

TEST(Sha1Test, Prefix64TruncationKeepsDigestPrefix) {
  // Dropping to key_bits keeps the digest's *leading* bits: for "abc" the
  // top 16 bits of Prefix64 are the first two digest bytes, 0xa999.
  Sha1Digest d = Sha1::Hash(Bytes("abc"));
  EXPECT_EQ(d.Prefix64() >> 48, 0xa999u);
  EXPECT_EQ(d.bytes[0], 0xa9u);
  EXPECT_EQ(d.bytes[1], 0x99u);
}

TEST(Sha1Test, DigestOrderingIsConsistent) {
  Sha1Digest a = Sha1::Hash(Bytes("a"));
  Sha1Digest b = Sha1::Hash(Bytes("b"));
  EXPECT_TRUE((a < b) || (b < a));
  EXPECT_FALSE(a < a);
}

// Property: one-bit changes flip the digest (sampled).
TEST(Sha1Test, BitFlipChangesDigest) {
  std::vector<uint8_t> data(256, 0x5a);
  Sha1Digest base = Sha1::Hash(data);
  for (size_t byte : {size_t{0}, size_t{63}, size_t{64}, size_t{255}}) {
    auto mutated = data;
    mutated[byte] ^= 1;
    EXPECT_NE(Sha1::Hash(mutated), base) << "byte " << byte;
  }
}

}  // namespace
}  // namespace medes
