// Randomised stress tests: long sequences of random operations must preserve
// the system's core invariants — incremental memory accounting equals
// recomputed accounting, registry refcounts return to zero, restores stay
// byte-exact, and the whole run is deterministic under a fixed seed.
#include <gtest/gtest.h>

#include "medes.h"

namespace medes {
namespace {

ClusterOptions StressCluster() {
  ClusterOptions opts;
  opts.num_nodes = 3;
  opts.node_memory_mb = 1e9;  // accounting-focused: no eviction interference
  opts.bytes_per_mb = 4096;
  return opts;
}

class StressRig {
 public:
  explicit StressRig(uint64_t seed)
      : cluster_(StressCluster()),
        fabric_({}, [this](const PageLocation& loc) { return cluster_.ReadBasePage(loc); }),
        agent_(cluster_, registry_, fabric_, {}),
        rng_(seed) {}

  // One random step; returns a tag describing what happened (for the
  // determinism check).
  int Step(SimTime now) {
    const uint64_t dice = rng_.Below(100);
    if (dice < 30 || cluster_.AllSandboxes().empty()) {
      const auto& profile =
          FunctionBenchProfiles()[rng_.Below(FunctionBenchProfiles().size())];
      Sandbox& sb = cluster_.Spawn(profile, NodeId{static_cast<int>(rng_.Below(3))}, now);
      cluster_.MarkWarm(sb, now);
      return 1;
    }
    auto ids = cluster_.AllSandboxes();
    Sandbox* sb = cluster_.Find(ids[rng_.Below(ids.size())]);
    if (dice < 45) {  // designate base (if eligible)
      if (sb->state == SandboxState::kWarm && cluster_.FindBaseSnapshot(sb->id) == nullptr) {
        agent_.DesignateBase(*sb);
        return 2;
      }
      return 0;
    }
    if (dice < 65) {  // dedup
      if (sb->state == SandboxState::kWarm && cluster_.FindBaseSnapshot(sb->id) == nullptr) {
        agent_.DedupOp(*sb, now);
        return 3;
      }
      return 0;
    }
    if (dice < 80) {  // restore (verified!)
      if (sb->state == SandboxState::kDedup) {
        RestoreOpResult r = agent_.RestoreOp(*sb, now, /*verify=*/true);
        // Drive any deferred background phase to completion immediately so
        // the rig's refcount/accounting invariants hold after every step.
        if (r.background_pending) {
          EXPECT_TRUE(agent_.CompleteBackgroundRestore(*sb, now).verified);
        } else {
          EXPECT_TRUE(r.verified);
        }
        return 4;
      }
      return 0;
    }
    if (dice < 90) {  // run + complete (bumps generation)
      if (sb->state == SandboxState::kWarm) {
        cluster_.MarkRunning(*sb, now);
        cluster_.MarkWarm(*sb, now + SimDuration{1});
        return 5;
      }
      return 0;
    }
    // purge
    if (sb->state == SandboxState::kDedup) {
      for (const PatchRecord& record : sb->patches) {
        for (const PageLocation& base : record.bases) {
          registry_.Unref(base.sandbox);
        }
      }
    }
    if (cluster_.FindBaseSnapshot(sb->id) == nullptr || registry_.RefCount(sb->id) == 0) {
      if (cluster_.FindBaseSnapshot(sb->id) != nullptr) {
        registry_.RemoveBaseSandbox(sb->id);
        cluster_.RemoveBaseSnapshot(sb->id);
      }
      cluster_.Purge(sb->id);
      return 6;
    }
    return 0;
  }

  void CheckAccounting() {
    for (int n = 0; n < cluster_.NumNodes(); ++n) {
      const NodeId node{n};
      ASSERT_NEAR(cluster_.node(node).used_mb, cluster_.RecomputeNodeUsedMb(node), 1e-6)
          << "node " << n;
    }
  }

  Cluster cluster_;
  FingerprintRegistry registry_;
  RdmaFabric fabric_;
  DedupAgent agent_;
  Rng rng_;
};

TEST(StressTest, RandomOpsPreserveAccounting) {
  StressRig rig(0xbeef);
  for (SimTime now; now < SimTime{400}; now += SimDuration{2}) {
    rig.Step(now);
    if (now.value() % 50 == 0) {
      rig.CheckAccounting();
    }
  }
  rig.CheckAccounting();
}

TEST(StressTest, AllRestoresByteExactUnderChurn) {
  StressRig rig(0xcafe);
  // Heavy dedup/restore cycling: the Step() mix already verifies every
  // restore byte-exact; this run just drives many of them.
  int restores = 0;
  for (SimTime now; now < SimTime{800}; now += SimDuration{2}) {
    restores += (rig.Step(now) == 4) ? 1 : 0;
  }
  EXPECT_GE(restores, 10) << "the mix should have exercised real restores";
}

TEST(StressTest, DeterministicUnderFixedSeed) {
  auto run = [](uint64_t seed) {
    StressRig rig(seed);
    std::vector<int> tags;
    for (SimTime now; now < SimTime{300}; now += SimDuration{2}) {
      tags.push_back(rig.Step(now));
    }
    return std::make_pair(tags, rig.cluster_.TotalUsedMb());
  };
  auto [tags_a, mem_a] = run(7);
  auto [tags_b, mem_b] = run(7);
  EXPECT_EQ(tags_a, tags_b);
  EXPECT_DOUBLE_EQ(mem_a, mem_b);
  auto [tags_c, mem_c] = run(8);
  EXPECT_NE(tags_a, tags_c);
}

TEST(StressTest, RefcountsReturnToZeroAfterFullDrain) {
  StressRig rig(0xd00d);
  std::vector<SandboxId> bases;
  // A base per function, then dedup/restore churn, then drain everything.
  for (const auto& p : FunctionBenchProfiles()) {
    Sandbox& sb = rig.cluster_.Spawn(p, NodeId{0}, SimTime{});
    rig.cluster_.MarkWarm(sb, SimTime{});
    rig.agent_.DesignateBase(sb);
    bases.push_back(sb.id);
  }
  std::vector<SandboxId> victims;
  for (int i = 0; i < 20; ++i) {
    const auto& p = FunctionBenchProfiles()[static_cast<size_t>(i) % 10];
    Sandbox& sb = rig.cluster_.Spawn(p, NodeId{1}, SimTime{});
    rig.cluster_.MarkWarm(sb, SimTime{});
    rig.agent_.DedupOp(sb, SimTime{1});
    victims.push_back(sb.id);
  }
  for (SandboxId id : victims) {
    Sandbox* sb = rig.cluster_.Find(id);
    RestoreOpResult r = rig.agent_.RestoreOp(*sb, SimTime{2}, /*verify=*/true);
    if (r.background_pending) {
      rig.agent_.CompleteBackgroundRestore(*sb, SimTime{3});
    }
  }
  for (SandboxId base : bases) {
    EXPECT_EQ(rig.registry_.RefCount(base), 0) << "base " << base;
  }
}

// The platform end-to-end with the distributed registry backend behaves
// identically to the centralized one (scheduling is registry-agnostic).
TEST(StressTest, PlatformWithDistributedRegistryMatchesCentralized) {
  TraceOptions topts;
  topts.duration = 6 * kMinute;
  topts.rate_scale = 1.0;
  auto trace = GenerateTrace(DefaultAzurePatterns(), topts);

  PlatformOptions central = MakePlatformOptions(PolicyKind::kMedes);
  central.cluster.num_nodes = 4;
  central.cluster.node_memory_mb = 2048;
  central.cluster.bytes_per_mb = 4096;
  central.medes.alpha = 20.0;
  PlatformOptions dist = central;
  dist.registry_shards = 4;
  dist.registry_replication = 2;

  RunMetrics a = ServerlessPlatform(central).Run(trace);
  RunMetrics b = ServerlessPlatform(dist).Run(trace);
  EXPECT_EQ(a.TotalColdStarts(), b.TotalColdStarts());
  EXPECT_EQ(a.dedup_ops, b.dedup_ops);
  ASSERT_EQ(a.requests.size(), b.requests.size());
  for (size_t i = 0; i < a.requests.size(); ++i) {
    ASSERT_EQ(a.requests[i].e2e, b.requests[i].e2e) << "request " << i;
  }
}

}  // namespace
}  // namespace medes
