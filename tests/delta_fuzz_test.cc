// Delta codec robustness corpus: round-trips at every level over adversarial
// content shapes, exhaustive truncation, byte-level corruption, and crafted
// op streams that overflow naive `pos + len` bounds arithmetic. Decoding a
// malformed delta must throw DeltaError — never crash, hang, or read out of
// bounds (the CI sanitizer job runs this binary under ASan/UBSan).
#include "delta/delta.h"

#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <vector>

#include "common/rng.h"

namespace medes {
namespace {

using delta_internal::AppendVarint;

std::vector<uint8_t> RandomBytes(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> out(n);
  for (auto& b : out) {
    b = static_cast<uint8_t>(rng.Next());
  }
  return out;
}

// A target derived from `base` with sparse point edits, an insertion and a
// deletion — the shape real page deltas take.
std::vector<uint8_t> MutatedCopy(const std::vector<uint8_t>& base, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> target = base;
  for (int i = 0; i < 25 && !target.empty(); ++i) {
    target[rng.Below(target.size())] = static_cast<uint8_t>(rng.Next());
  }
  auto insert = RandomBytes(33, seed + 1);
  target.insert(target.begin() + static_cast<ptrdiff_t>(rng.Below(target.size() + 1)),
                insert.begin(), insert.end());
  if (target.size() > 100) {
    size_t cut = rng.Below(target.size() - 50);
    target.erase(target.begin() + static_cast<ptrdiff_t>(cut),
                 target.begin() + static_cast<ptrdiff_t>(cut + 40));
  }
  return target;
}

TEST(DeltaFuzzTest, RoundTripEveryLevel) {
  const std::vector<std::pair<std::vector<uint8_t>, std::vector<uint8_t>>> cases = {
      {RandomBytes(4096, 1), MutatedCopy(RandomBytes(4096, 1), 2)},
      {RandomBytes(4096, 3), RandomBytes(4096, 4)},            // unrelated buffers
      {std::vector<uint8_t>(4096, 0), RandomBytes(4096, 5)},   // zero base
      {RandomBytes(4096, 6), std::vector<uint8_t>(4096, 0)},   // zero target
      {std::vector<uint8_t>{}, RandomBytes(512, 7)},           // empty base
      {RandomBytes(512, 8), std::vector<uint8_t>{}},           // empty target
      {RandomBytes(64, 9), RandomBytes(64, 9)},                // identical
      {std::vector<uint8_t>(4096, 0xAB), std::vector<uint8_t>(5000, 0xAB)},  // repetitive
  };
  for (int level = 0; level <= 9; ++level) {
    DeltaOptions options;
    options.level = level;
    for (size_t c = 0; c < cases.size(); ++c) {
      const auto& [base, target] = cases[c];
      std::vector<uint8_t> delta = DeltaEncode(base, target, options);
      EXPECT_EQ(DeltaDecode(base, delta), target) << "level " << level << " case " << c;
      DeltaStats stats = InspectDelta(delta);
      EXPECT_EQ(stats.add_bytes + stats.copy_bytes, target.size())
          << "level " << level << " case " << c;
      EXPECT_EQ(DeltaTargetLength(delta), target.size());
    }
  }
}

TEST(DeltaFuzzTest, EveryTruncationThrows) {
  auto base = RandomBytes(2048, 20);
  auto target = MutatedCopy(base, 21);
  std::vector<uint8_t> delta = DeltaEncode(base, target);
  ASSERT_EQ(DeltaDecode(base, delta), target);
  for (size_t len = 0; len < delta.size(); ++len) {
    std::span<const uint8_t> cut(delta.data(), len);
    EXPECT_THROW(DeltaDecode(base, cut), DeltaError) << "prefix length " << len;
  }
}

// Flipping any single byte must never escape DeltaError into a crash or an
// out-of-bounds access. A flip in an ADD payload still decodes (to different
// bytes); structural flips must be caught by validation.
TEST(DeltaFuzzTest, ByteCorruptionNeverCrashes) {
  auto base = RandomBytes(2048, 22);
  auto target = MutatedCopy(base, 23);
  std::vector<uint8_t> delta = DeltaEncode(base, target);
  for (size_t pos = 0; pos < delta.size(); ++pos) {
    for (uint8_t flip : {uint8_t{0x01}, uint8_t{0x80}, uint8_t{0xFF}}) {
      std::vector<uint8_t> corrupt = delta;
      corrupt[pos] ^= flip;
      try {
        std::vector<uint8_t> out = DeltaDecode(base, corrupt);
        // If it decoded at all, the header's target length was honoured.
        EXPECT_EQ(out.size(), DeltaTargetLength(corrupt));
      } catch (const DeltaError&) {
        // Expected for structural corruption.
      }
      try {
        InspectDelta(corrupt);
      } catch (const DeltaError&) {
      }
    }
  }
}

TEST(DeltaFuzzTest, BitFlipRoundTripSweep) {
  auto base = RandomBytes(1024, 24);
  auto target = MutatedCopy(base, 25);
  std::vector<uint8_t> delta = DeltaEncode(base, target);
  for (size_t bit = 0; bit < delta.size() * 8; bit += 7) {
    std::vector<uint8_t> corrupt = delta;
    corrupt[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    try {
      DeltaDecode(base, corrupt);
    } catch (const DeltaError&) {
    }
  }
}

// Builds a syntactically valid header for `base_len`/`target_len` ready for
// hand-crafted op streams.
std::vector<uint8_t> Header(uint64_t base_len, uint64_t target_len) {
  std::vector<uint8_t> d = {'M', 'D', 'T', '1'};
  AppendVarint(d, base_len);
  AppendVarint(d, target_len);
  return d;
}

// Regression: ADD with a length near 2^64 used to pass the naive
// `pos + len > delta.size()` check by wrapping, then read far out of bounds.
TEST(DeltaFuzzTest, AddLengthOverflowRejected) {
  auto base = RandomBytes(64, 30);
  std::vector<uint8_t> d = Header(base.size(), 16);
  d.push_back(0x00);  // ADD
  AppendVarint(d, std::numeric_limits<uint64_t>::max());
  d.push_back(0xAA);  // one byte of "payload"
  EXPECT_THROW(DeltaDecode(base, d), DeltaError);
  EXPECT_THROW(InspectDelta(d), DeltaError);
}

TEST(DeltaFuzzTest, AddLengthWrapToZeroRejected) {
  auto base = RandomBytes(64, 31);
  std::vector<uint8_t> d = Header(base.size(), 4);
  d.push_back(0x00);  // ADD
  // len chosen so that pos + len == 2^64 exactly (sum wraps to 0, which is
  // <= delta.size() under the naive check).
  size_t pos_after_len = d.size() + 10;  // 10-byte varint follows
  AppendVarint(d, 0 - static_cast<uint64_t>(pos_after_len));
  EXPECT_THROW(DeltaDecode(base, d), DeltaError);
  EXPECT_THROW(InspectDelta(d), DeltaError);
}

// Regression: COPY with off + len wrapping past 2^64 used to slip through
// `off + len > base.size()` and copy from wild addresses.
TEST(DeltaFuzzTest, CopyRangeOverflowRejected) {
  auto base = RandomBytes(64, 32);
  std::vector<uint8_t> d = Header(base.size(), 8);
  d.push_back(0x01);  // COPY
  AppendVarint(d, 32);                                     // valid offset
  AppendVarint(d, std::numeric_limits<uint64_t>::max());   // len wraps off+len
  EXPECT_THROW(DeltaDecode(base, d), DeltaError);
}

TEST(DeltaFuzzTest, CopyOffsetPastBaseRejected) {
  auto base = RandomBytes(64, 33);
  std::vector<uint8_t> d = Header(base.size(), 8);
  d.push_back(0x01);  // COPY
  AppendVarint(d, std::numeric_limits<uint64_t>::max() - 3);  // off >> base
  AppendVarint(d, 8);
  EXPECT_THROW(DeltaDecode(base, d), DeltaError);
}

// Ops that individually fit but overshoot the declared target length must be
// rejected during validation — before any output is materialised — even if
// their total wraps 2^64.
TEST(DeltaFuzzTest, TargetLengthOverflowRejected) {
  auto base = RandomBytes(64, 34);
  std::vector<uint8_t> d = Header(base.size(), 8);
  for (int i = 0; i < 4; ++i) {
    d.push_back(0x01);  // COPY of 64 bytes each: 256 total vs target_len 8
    AppendVarint(d, 0);
    AppendVarint(d, 64);
  }
  EXPECT_THROW(DeltaDecode(base, d), DeltaError);
}

TEST(DeltaFuzzTest, DecodeIntoReusesBuffer) {
  auto base = RandomBytes(1024, 35);
  auto target = MutatedCopy(base, 36);
  std::vector<uint8_t> delta = DeltaEncode(base, target);
  std::vector<uint8_t> out(9999, 0xCD);  // stale oversized contents
  DeltaDecodeInto(base, delta, out);
  EXPECT_EQ(out, target);
  // A failed decode must not have resized the buffer (validation precedes
  // any write to `out`).
  std::vector<uint8_t> bad = Header(base.size(), 4);
  bad.push_back(0x7F);  // unknown opcode
  out.assign(3, 0xEE);
  EXPECT_THROW(DeltaDecodeInto(base, bad, out), DeltaError);
  EXPECT_EQ(out, (std::vector<uint8_t>(3, 0xEE)));
}

TEST(DeltaFuzzTest, EncodeIntoWithSharedScratchMatchesEncode) {
  DeltaScratch scratch;
  std::vector<uint8_t> buf;
  for (uint64_t seed = 40; seed < 48; ++seed) {
    auto base = RandomBytes(2048, seed);
    auto target = MutatedCopy(base, seed + 100);
    DeltaEncodeInto(base, target, {}, buf, &scratch);
    EXPECT_EQ(buf, DeltaEncode(base, target)) << "seed " << seed;
    EXPECT_EQ(DeltaDecode(base, buf), target) << "seed " << seed;
  }
}

}  // namespace
}  // namespace medes
