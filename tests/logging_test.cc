// Concurrent-logging safety: EmitLog writes one whole record per call, so
// lines from many threads never interleave mid-line.
#include "common/logging.h"

#include <algorithm>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace medes {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_ = GetLogLevel(); }
  void TearDown() override { SetLogLevel(previous_); }

 private:
  LogLevel previous_;
};

TEST_F(LoggingTest, LevelRoundTrip) {
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
}

TEST_F(LoggingTest, MacroFiltersBelowLevel) {
  SetLogLevel(LogLevel::kWarn);
  ::testing::internal::CaptureStderr();
  MEDES_LOG(kInfo) << "filtered";
  MEDES_LOG(kWarn) << "emitted";
  const std::string output = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(output.find("filtered"), std::string::npos);
  EXPECT_NE(output.find("emitted"), std::string::npos);
}

TEST_F(LoggingTest, RecordCarriesLevelTagAndThreadId) {
  SetLogLevel(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  MEDES_LOG(kInfo) << "hello";
  const std::string output = ::testing::internal::GetCapturedStderr();
  // "[medes INFO t<id>] hello"
  EXPECT_NE(output.find("[medes INFO t"), std::string::npos);
  EXPECT_NE(output.find("] hello"), std::string::npos);
}

TEST_F(LoggingTest, ConcurrentLoggersEmitWholeLines) {
  constexpr int kThreads = 8;
  constexpr int kMessagesPerThread = 200;
  SetLogLevel(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([t] {
        for (int i = 0; i < kMessagesPerThread; ++i) {
          MEDES_LOG(kInfo) << "worker=" << t << " msg=" << i << " end";
        }
      });
    }
    for (std::thread& th : threads) {
      th.join();
    }
  }
  const std::string output = ::testing::internal::GetCapturedStderr();

  // Every line must be one complete, untorn record.
  std::istringstream lines(output);
  std::string line;
  int records = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) {
      continue;
    }
    ++records;
    EXPECT_TRUE(line.starts_with("[medes INFO t")) << "torn line: " << line;
    EXPECT_TRUE(line.ends_with(" end")) << "torn line: " << line;
    // Exactly one record per line: a second "[medes" means two writes fused
    // into one line (torn newline).
    EXPECT_EQ(line.find("[medes", 1), std::string::npos) << "fused line: " << line;
  }
  EXPECT_EQ(records, kThreads * kMessagesPerThread);
}

}  // namespace
}  // namespace medes
