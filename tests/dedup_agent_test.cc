#include "dedupagent/dedup_agent.h"

#include <gtest/gtest.h>

#include <memory>

namespace medes {
namespace {

ClusterOptions SmallCluster() {
  ClusterOptions opts;
  opts.num_nodes = 2;
  opts.node_memory_mb = 4096;
  opts.bytes_per_mb = 16384;
  return opts;
}

class DedupAgentTest : public ::testing::Test {
 protected:
  DedupAgentTest()
      : cluster_(SmallCluster()),
        fabric_({}, [this](const PageLocation& loc) { return cluster_.ReadBasePage(loc); }),
        agent_(cluster_, registry_, fabric_, {}) {}

  // Spawns a warm sandbox of `name` on `node`.
  Sandbox& WarmSandbox(const std::string& name, NodeId node, SimTime now = SimTime{}) {
    Sandbox& sb = cluster_.Spawn(ProfileByName(name), node, now);
    cluster_.MarkWarm(sb, now);
    return sb;
  }

  Cluster cluster_;
  FingerprintRegistry registry_;
  RdmaFabric fabric_;
  DedupAgent agent_;
};

TEST_F(DedupAgentTest, DesignateBasePopulatesRegistry) {
  Sandbox& base = WarmSandbox("Vanilla", NodeId{0});
  BaseSnapshot& snap = agent_.DesignateBase(base);
  EXPECT_EQ(snap.sandbox, base.id);
  EXPECT_TRUE(registry_.IsBaseSandbox(base.id));
  RegistryStats stats = registry_.stats();
  EXPECT_GT(stats.num_keys, 0u);
  EXPECT_GT(stats.num_entries, 0u);
}

TEST_F(DedupAgentTest, DedupAgainstSameFunctionBaseSavesMostMemory) {
  Sandbox& base = WarmSandbox("Vanilla", NodeId{0});
  agent_.DesignateBase(base);
  Sandbox& victim = WarmSandbox("Vanilla", NodeId{0});
  DedupOpResult result = agent_.DedupOp(victim, SimTime{10});
  EXPECT_EQ(victim.state, SandboxState::kDedup);
  EXPECT_GT(result.pages_deduped, result.pages_total / 10)
      << "clean pages of same-function sandboxes dedup";
  EXPECT_GT(result.saved_bytes, 0u);
  EXPECT_LT(cluster_.DedupFootprintMb(victim), cluster_.WarmFootprintMb(victim) * 0.85);
  // Patches reference the base sandbox -> refcount raised.
  EXPECT_GT(registry_.RefCount(base.id), 0);
  EXPECT_EQ(result.same_function_pages, result.pages_deduped);
  EXPECT_EQ(result.cross_function_pages, 0u);
}

TEST_F(DedupAgentTest, DedupWithEmptyRegistryKeepsPagesUnique) {
  Sandbox& sb = WarmSandbox("Vanilla", NodeId{0});
  DedupOpResult result = agent_.DedupOp(sb, SimTime{0});
  EXPECT_EQ(result.pages_deduped, 0u);
  EXPECT_EQ(result.pages_unique + result.pages_zero, result.pages_total);
  // Zero pages still save memory.
  EXPECT_EQ(result.saved_bytes, result.pages_zero * kPageSize);
}

TEST_F(DedupAgentTest, RestoreRoundTripsByteExact) {
  Sandbox& base = WarmSandbox("Vanilla", NodeId{0});
  agent_.DesignateBase(base);
  Sandbox& victim = WarmSandbox("Vanilla", NodeId{1});  // remote node
  agent_.DedupOp(victim, SimTime{10});
  RestoreOpResult result = agent_.RestoreOp(victim, SimTime{20}, /*verify=*/true);
  EXPECT_TRUE(result.verified);
  EXPECT_EQ(victim.state, SandboxState::kWarm);
  EXPECT_GT(result.base_pages_read, 0u);
  EXPECT_GT(result.remote_reads, 0u) << "base lives on another node";
  // All base references released.
  EXPECT_EQ(registry_.RefCount(base.id), 0);
  EXPECT_TRUE(victim.patches.empty());
}

TEST_F(DedupAgentTest, RestoreTimingComponentsPositiveAndOrdered) {
  Sandbox& base = WarmSandbox("LinAlg", NodeId{0});
  agent_.DesignateBase(base);
  Sandbox& victim = WarmSandbox("LinAlg", NodeId{1});
  agent_.DedupOp(victim, SimTime{0});
  RestoreOpResult r = agent_.RestoreOp(victim, SimTime{1});
  EXPECT_GT(r.read_base_time, SimDuration{});
  EXPECT_GT(r.compute_time, SimDuration{});
  EXPECT_GT(r.sandbox_restore_time, SimDuration{});
  EXPECT_EQ(r.total_time, r.read_base_time + r.compute_time + r.sandbox_restore_time);
  // Namespace work was pre-done at dedup time: the restore must be far
  // cheaper than cold start (paper Fig. 8).
  EXPECT_LT(r.total_time, ProfileByName("LinAlg").cold_start);
}

TEST_F(DedupAgentTest, NamespacePreparationSkipsPtreeCost) {
  Sandbox& base = WarmSandbox("Vanilla", NodeId{0});
  agent_.DesignateBase(base);
  Sandbox& victim = WarmSandbox("Vanilla", NodeId{0});
  agent_.DedupOp(victim, SimTime{0});
  ASSERT_TRUE(victim.namespaces_prepared);
  RestoreOpResult prepared = agent_.RestoreOp(victim, SimTime{1});
  // Re-dedup with preparation artificially cleared.
  cluster_.MarkRunning(victim, SimTime{2});
  cluster_.MarkWarm(victim, SimTime{3});
  agent_.DedupOp(victim, SimTime{4});
  victim.namespaces_prepared = false;
  RestoreOpResult unprepared = agent_.RestoreOp(victim, SimTime{5});
  EXPECT_GT(unprepared.sandbox_restore_time,
            prepared.sandbox_restore_time + 400 * kMillisecond);
}

TEST_F(DedupAgentTest, CrossFunctionDedupWorks) {
  // LinAlg base; ImagePro victim shares python_runtime + numpy.
  Sandbox& base = WarmSandbox("LinAlg", NodeId{0});
  agent_.DesignateBase(base);
  Sandbox& victim = WarmSandbox("ImagePro", NodeId{0});
  DedupOpResult result = agent_.DedupOp(victim, SimTime{0});
  EXPECT_GT(result.pages_deduped, 0u);
  EXPECT_GT(result.cross_function_pages, 0u);
  EXPECT_EQ(result.same_function_pages, 0u);
  RestoreOpResult restore = agent_.RestoreOp(victim, SimTime{1}, /*verify=*/true);
  EXPECT_TRUE(restore.verified);
}

TEST_F(DedupAgentTest, DedupOpRejectsNonWarm) {
  Sandbox& sb = cluster_.Spawn(ProfileByName("Vanilla"), NodeId{0}, SimTime{0});  // running
  EXPECT_THROW(agent_.DedupOp(sb, SimTime{0}), std::logic_error);
}

TEST_F(DedupAgentTest, RestoreOpRejectsNonDedup) {
  Sandbox& sb = WarmSandbox("Vanilla", NodeId{0});
  EXPECT_THROW(agent_.RestoreOp(sb, SimTime{0}), std::logic_error);
}

TEST_F(DedupAgentTest, DesignateBaseRejectsNonWarm) {
  Sandbox& sb = cluster_.Spawn(ProfileByName("Vanilla"), NodeId{0}, SimTime{0});
  EXPECT_THROW(agent_.DesignateBase(sb), std::logic_error);
}

TEST_F(DedupAgentTest, DedupTimeScalesWithImageSize) {
  Sandbox& base_small = WarmSandbox("Vanilla", NodeId{0});
  agent_.DesignateBase(base_small);
  Sandbox& base_large = WarmSandbox("ModelTrain", NodeId{0});
  agent_.DesignateBase(base_large);
  Sandbox& small = WarmSandbox("Vanilla", NodeId{0});
  Sandbox& large = WarmSandbox("ModelTrain", NodeId{0});
  DedupOpResult rs = agent_.DedupOp(small, SimTime{0});
  DedupOpResult rl = agent_.DedupOp(large, SimTime{0});
  EXPECT_GT(rl.total_time, rs.total_time);
  // Paper Section 7.7: total dedup time of seconds at full scale.
  EXPECT_GT(rl.total_time, 500 * kMillisecond);
  EXPECT_LT(rl.total_time, 30 * kSecond);
}

TEST_F(DedupAgentTest, SizeOnlyModeStillAccounts) {
  DedupAgentOptions opts;
  opts.keep_payloads = false;
  DedupAgent agent(cluster_, registry_, fabric_, opts);
  Sandbox& base = WarmSandbox("Vanilla", NodeId{0});
  agent.DesignateBase(base);
  Sandbox& victim = WarmSandbox("Vanilla", NodeId{0});
  DedupOpResult result = agent.DedupOp(victim, SimTime{0});
  EXPECT_GT(result.pages_deduped, 0u);
  EXPECT_TRUE(victim.checkpoint->payloads_dropped());
  double dedup_mb = cluster_.DedupFootprintMb(victim);
  EXPECT_LT(dedup_mb, cluster_.WarmFootprintMb(victim));
  // Restore works in size-only mode (no verification possible).
  RestoreOpResult restore = agent.RestoreOp(victim, SimTime{1});
  EXPECT_FALSE(restore.verified);
  EXPECT_EQ(victim.state, SandboxState::kWarm);
}

TEST_F(DedupAgentTest, ScaleFactorReflectsImageScale) {
  EXPECT_DOUBLE_EQ(agent_.ScaleFactor(), static_cast<double>(1 << 20) / 16384.0);
}

}  // namespace
}  // namespace medes
