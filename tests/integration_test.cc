// Cross-module integration tests: the full dedup pipeline outside the
// platform facade, memory-accounting invariants under churn, and the
// paper-level behavioural claims at small scale.
#include <gtest/gtest.h>

#include "medes.h"

namespace medes {
namespace {

uint64_t bench_total_dedup_starts(const RunMetrics& m) {
  uint64_t total = 0;
  for (const auto& f : m.per_function) {
    total += f.dedup_starts;
  }
  return total;
}

ClusterOptions MediumCluster() {
  ClusterOptions opts;
  opts.num_nodes = 4;
  opts.node_memory_mb = 2048;
  opts.bytes_per_mb = 8192;
  return opts;
}

// Full manual pipeline: spawn -> warm -> designate base -> dedup others on
// other nodes -> restore each -> verify bytes, refcounts, and accounting.
TEST(IntegrationTest, FullDedupRestorePipeline) {
  Cluster cluster(MediumCluster());
  FingerprintRegistry registry;
  RdmaFabric fabric({}, [&](const PageLocation& loc) { return cluster.ReadBasePage(loc); });
  DedupAgent agent(cluster, registry, fabric, {});

  Sandbox& base = cluster.Spawn(ProfileByName("LinAlg"), NodeId{0}, SimTime{0});
  cluster.MarkWarm(base, SimTime{0});
  agent.DesignateBase(base);

  std::vector<SandboxId> victims;
  for (int i = 0; i < 3; ++i) {
    Sandbox& sb = cluster.Spawn(ProfileByName("LinAlg"), NodeId{(i % 3) + 1}, SimTime{10});
    cluster.MarkWarm(sb, SimTime{10});
    DedupOpResult result = agent.DedupOp(sb, SimTime{20});
    EXPECT_GT(result.pages_deduped, 0u);
    victims.push_back(sb.id);
  }
  EXPECT_GT(registry.RefCount(base.id), 0);

  for (SandboxId id : victims) {
    Sandbox* sb = cluster.Find(id);
    ASSERT_NE(sb, nullptr);
    RestoreOpResult r = agent.RestoreOp(*sb, SimTime{30}, /*verify=*/true);
    // Lazy restores after the first train a working set and defer pages;
    // complete the background phase so verification covers the whole image.
    if (r.background_pending) {
      EXPECT_TRUE(agent.CompleteBackgroundRestore(*sb, SimTime{31}).verified);
    } else {
      EXPECT_TRUE(r.verified);
    }
  }
  EXPECT_EQ(registry.RefCount(base.id), 0);

  // Accounting invariant after the churn.
  for (int n = 0; n < cluster.NumNodes(); ++n) {
    const NodeId node{n};
    EXPECT_NEAR(cluster.node(node).used_mb, cluster.RecomputeNodeUsedMb(node), 1e-6)
        << "node " << n;
  }
}

TEST(IntegrationTest, RepeatedDedupRestoreCyclesStayConsistent) {
  Cluster cluster(MediumCluster());
  FingerprintRegistry registry;
  RdmaFabric fabric({}, [&](const PageLocation& loc) { return cluster.ReadBasePage(loc); });
  DedupAgent agent(cluster, registry, fabric, {});

  Sandbox& base = cluster.Spawn(ProfileByName("Vanilla"), NodeId{0}, SimTime{0});
  cluster.MarkWarm(base, SimTime{0});
  agent.DesignateBase(base);

  Sandbox& sb = cluster.Spawn(ProfileByName("Vanilla"), NodeId{1}, SimTime{0});
  cluster.MarkWarm(sb, SimTime{0});
  for (int cycle = 0; cycle < 5; ++cycle) {
    agent.DedupOp(sb, SimTime{cycle * 100});
    RestoreOpResult r = agent.RestoreOp(sb, SimTime{cycle * 100 + 50}, /*verify=*/true);
    if (r.background_pending) {
      ASSERT_TRUE(agent.CompleteBackgroundRestore(sb, SimTime{cycle * 100 + 55}).verified)
          << "cycle " << cycle;
    } else {
      ASSERT_TRUE(r.verified) << "cycle " << cycle;
    }
    // Simulate an execution between cycles: content changes generation.
    cluster.MarkRunning(sb, SimTime{cycle * 100 + 60});
    cluster.MarkWarm(sb, SimTime{cycle * 100 + 70});
  }
  EXPECT_EQ(registry.RefCount(base.id), 0);
}

TEST(IntegrationTest, DedupSandboxesShrinkClusterMemory) {
  Cluster cluster(MediumCluster());
  FingerprintRegistry registry;
  RdmaFabric fabric({}, [&](const PageLocation& loc) { return cluster.ReadBasePage(loc); });
  DedupAgent agent(cluster, registry, fabric, {});

  Sandbox& base = cluster.Spawn(ProfileByName("RNNModel"), NodeId{0}, SimTime{0});
  cluster.MarkWarm(base, SimTime{0});
  agent.DesignateBase(base);
  const double with_warm_fleet = [&] {
    std::vector<SandboxId> ids;
    for (int i = 0; i < 4; ++i) {
      Sandbox& sb = cluster.Spawn(ProfileByName("RNNModel"), NodeId{1 + (i % 3)}, SimTime{0});
      cluster.MarkWarm(sb, SimTime{0});
      ids.push_back(sb.id);
    }
    double used = cluster.TotalUsedMb();
    // Dedup the whole fleet.
    for (SandboxId id : ids) {
      agent.DedupOp(*cluster.Find(id), SimTime{1});
    }
    double after = cluster.TotalUsedMb();
    EXPECT_LT(after, used);
    // RNNModel is the paper's best dedup case (~58% savings, Table 3):
    // expect at least 30% fleet-wide reduction counting the pinned base.
    double fleet_warm = 4 * ProfileByName("RNNModel").memory_mb;
    double fleet_dedup = after - (used - fleet_warm);
    EXPECT_LT(fleet_dedup, 0.7 * fleet_warm);
    return after;
  }();
  (void)with_warm_fleet;
}

TEST(IntegrationTest, MedesBeatsFixedKeepAliveUnderPressure) {
  // The paper's headline: under memory pressure Medes converts cold starts
  // into dedup starts. Small-scale check of the direction.
  TraceOptions topts;
  topts.duration = 15 * kMinute;
  topts.rate_scale = 1.5;
  auto trace = GenerateTrace(DefaultAzurePatterns(), topts);

  PlatformOptions fixed = MakePlatformOptions(PolicyKind::kFixedKeepAlive);
  fixed.cluster.num_nodes = 4;
  fixed.cluster.node_memory_mb = 1536;  // oversubscribed, but bases still fit
  fixed.cluster.bytes_per_mb = 4096;

  PlatformOptions medes = fixed;
  medes.policy = PolicyKind::kMedes;
  medes.medes.idle_period = 20 * kSecond;
  medes.medes.alpha = 20.0;

  RunMetrics m_fixed = ServerlessPlatform(fixed).Run(trace);
  RunMetrics m_medes = ServerlessPlatform(medes).Run(trace);
  EXPECT_LT(m_medes.TotalColdStarts(), m_fixed.TotalColdStarts());
  // The machinery must actually be engaged, not just tied.
  EXPECT_GT(m_medes.dedup_ops, 100u);
  EXPECT_GT(bench_total_dedup_starts(m_medes), 100u);
}

TEST(IntegrationTest, CrossFunctionDeduplicationDominates) {
  // Section 7.3.1: most deduplicated pages match a base page of a different
  // function. Build one base (LinAlg) then dedup other functions against it.
  Cluster cluster(MediumCluster());
  FingerprintRegistry registry;
  RdmaFabric fabric({}, [&](const PageLocation& loc) { return cluster.ReadBasePage(loc); });
  DedupAgent agent(cluster, registry, fabric, {});

  Sandbox& base = cluster.Spawn(ProfileByName("LinAlg"), NodeId{0}, SimTime{0});
  cluster.MarkWarm(base, SimTime{0});
  agent.DesignateBase(base);

  size_t cross = 0, same = 0;
  for (const char* name : {"ImagePro", "VideoPro", "Vanilla"}) {
    Sandbox& sb = cluster.Spawn(ProfileByName(name), NodeId{1}, SimTime{0});
    cluster.MarkWarm(sb, SimTime{0});
    DedupOpResult r = agent.DedupOp(sb, SimTime{1});
    cross += r.cross_function_pages;
    same += r.same_function_pages;
  }
  EXPECT_GT(cross, 0u);
  EXPECT_EQ(same, 0u);
}

TEST(IntegrationTest, RegistryStaysSmallWithBaseRestriction) {
  // Section 4.1.3: registry size tracks base sandboxes, not all sandboxes.
  Cluster cluster(MediumCluster());
  FingerprintRegistry registry;
  RdmaFabric fabric({}, [&](const PageLocation& loc) { return cluster.ReadBasePage(loc); });
  DedupAgent agent(cluster, registry, fabric, {});

  Sandbox& base = cluster.Spawn(ProfileByName("Vanilla"), NodeId{0}, SimTime{0});
  cluster.MarkWarm(base, SimTime{0});
  agent.DesignateBase(base);
  const size_t keys_after_base = registry.stats().num_keys;

  for (int i = 0; i < 5; ++i) {
    Sandbox& sb = cluster.Spawn(ProfileByName("Vanilla"), NodeId{1}, SimTime{0});
    cluster.MarkWarm(sb, SimTime{0});
    agent.DedupOp(sb, SimTime{1});
  }
  // Dedup ops only *read* the registry.
  EXPECT_EQ(registry.stats().num_keys, keys_after_base);
  EXPECT_EQ(registry.stats().num_base_sandboxes, 1u);
}

}  // namespace
}  // namespace medes
