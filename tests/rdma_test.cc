#include "rdma/rdma.h"

#include <gtest/gtest.h>

#include <vector>

namespace medes {
namespace {

std::vector<uint8_t> FakePage(uint8_t fill) { return std::vector<uint8_t>(4096, fill); }

TEST(RdmaTest, ReadCostScalesWithSize) {
  RdmaFabric fabric({.per_read_latency = SimDuration{3}, .bandwidth_gbps = 10.0});
  // 4 KiB at 10 Gbps = 4096*8/10000 us ~= 3.27 us transfer + 3 us latency.
  SimDuration cost = fabric.ReadCost(Bytes{4096}, /*remote=*/true);
  EXPECT_GE(cost, SimDuration{6});
  EXPECT_LE(cost, SimDuration{7});
  EXPECT_GT(fabric.ReadCost(Bytes{1 << 20}, true), fabric.ReadCost(Bytes{4096}, true));
}

TEST(RdmaTest, LocalReadsCheaper) {
  RdmaFabric fabric;
  EXPECT_LT(fabric.ReadCost(Bytes{4096}, /*remote=*/false), fabric.ReadCost(Bytes{4096}, /*remote=*/true));
}

TEST(RdmaTest, ProviderRoutesBytesAndCountsStats) {
  RdmaFabric fabric({}, [](const PageLocation& loc) {
    return FakePage(static_cast<uint8_t>(loc.page_index.value()));
  });
  SimDuration cost;
  auto bytes =
      fabric.ReadPage({.node = NodeId{2}, .sandbox = SandboxId{1}, .page_index = PageIndex{7}}, /*reader_node=*/NodeId{0}, &cost);
  ASSERT_EQ(bytes.size(), 4096u);
  EXPECT_EQ(bytes[0], 7);
  EXPECT_GT(cost, SimDuration{0});
  EXPECT_EQ(fabric.stats().remote_reads, 1u);
  EXPECT_EQ(fabric.stats().remote_bytes, 4096u);
  EXPECT_EQ(fabric.stats().local_reads, 0u);
}

TEST(RdmaTest, LocalReadCountedSeparately) {
  RdmaFabric fabric({}, [](const PageLocation&) { return FakePage(1); });
  SimDuration cost;
  fabric.ReadPage({.node = NodeId{5}, .sandbox = SandboxId{1}, .page_index = PageIndex{0}}, /*reader_node=*/NodeId{5}, &cost);
  EXPECT_EQ(fabric.stats().local_reads, 1u);
  EXPECT_EQ(fabric.stats().remote_reads, 0u);
}

TEST(RdmaTest, CostAccumulates) {
  RdmaFabric fabric({}, [](const PageLocation&) { return FakePage(0); });
  SimDuration cost;
  fabric.ReadPage({.node = NodeId{1}, .sandbox = SandboxId{1}, .page_index = PageIndex{0}}, NodeId{0}, &cost);
  SimDuration after_one = cost;
  fabric.ReadPage({.node = NodeId{1}, .sandbox = SandboxId{1}, .page_index = PageIndex{1}}, NodeId{0}, &cost);
  EXPECT_NEAR(static_cast<double>(cost.value()), 2.0 * static_cast<double>(after_one.value()), 1.0);
}

TEST(RdmaTest, MissingProviderThrows) {
  RdmaFabric fabric;
  SimDuration cost;
  EXPECT_THROW(fabric.ReadPage({.node = NodeId{0}, .sandbox = SandboxId{1}, .page_index = PageIndex{0}}, NodeId{0}, &cost), RdmaError);
}

TEST(RdmaTest, UnavailablePageThrows) {
  RdmaFabric fabric({}, [](const PageLocation&) { return std::vector<uint8_t>{}; });
  SimDuration cost;
  EXPECT_THROW(fabric.ReadPage({.node = NodeId{0}, .sandbox = SandboxId{1}, .page_index = PageIndex{0}}, NodeId{0}, &cost), RdmaError);
}

TEST(RdmaTest, NullCostPointerAccepted) {
  RdmaFabric fabric({}, [](const PageLocation&) { return FakePage(0); });
  EXPECT_NO_THROW(fabric.ReadPage({.node = NodeId{1}, .sandbox = SandboxId{1}, .page_index = PageIndex{0}}, NodeId{0}, nullptr));
}

TEST(RdmaTest, ResetStats) {
  RdmaFabric fabric({}, [](const PageLocation&) { return FakePage(0); });
  fabric.ReadPage({.node = NodeId{1}, .sandbox = SandboxId{1}, .page_index = PageIndex{0}}, NodeId{0}, nullptr);
  fabric.ResetStats();
  EXPECT_EQ(fabric.stats().remote_reads, 0u);
}

// ---- Base-page cache -------------------------------------------------------

PageLocation Loc(uint64_t sandbox, uint32_t page) {
  return {.node = NodeId{1}, .sandbox = SandboxId{sandbox}, .page_index = PageIndex{page}};
}

TEST(RdmaCacheTest, RepeatReadsHitCache) {
  int provider_calls = 0;
  RdmaFabric fabric({.page_cache_capacity = 8}, [&](const PageLocation& loc) {
    ++provider_calls;
    return FakePage(static_cast<uint8_t>(loc.page_index.value()));
  });
  SimDuration first_cost;
  auto a = fabric.ReadPage(Loc(1, 0), /*reader_node=*/NodeId{0}, &first_cost);
  SimDuration second_cost;
  auto b = fabric.ReadPage(Loc(1, 0), /*reader_node=*/NodeId{0}, &second_cost);
  EXPECT_EQ(a, b) << "cache returns the same bytes";
  EXPECT_EQ(provider_calls, 1) << "second read never reached the provider";
  EXPECT_LT(second_cost, first_cost) << "a hit is a DRAM copy, not a fabric read";
  EXPECT_EQ(fabric.stats().cache_hits, 1u);
  EXPECT_EQ(fabric.stats().cache_misses, 1u);
  EXPECT_EQ(fabric.stats().remote_reads, 1u) << "hits are not counted as fabric reads";
  EXPECT_DOUBLE_EQ(fabric.stats().CacheHitRate(), 0.5);
}

TEST(RdmaCacheTest, LruEvictsLeastRecentlyUsed) {
  RdmaFabric fabric({.page_cache_capacity = 2}, [](const PageLocation& loc) {
    return FakePage(static_cast<uint8_t>(loc.page_index.value()));
  });
  fabric.ReadPage(Loc(1, 0), NodeId{0}, nullptr);  // miss: cache [0]
  fabric.ReadPage(Loc(1, 1), NodeId{0}, nullptr);  // miss: cache [1, 0]
  fabric.ReadPage(Loc(1, 0), NodeId{0}, nullptr);  // hit: 0 promoted -> [0, 1]
  fabric.ReadPage(Loc(1, 2), NodeId{0}, nullptr);  // miss: evicts 1 (LRU) -> [2, 0]
  EXPECT_EQ(fabric.stats().cache_evictions, 1u);
  fabric.ReadPage(Loc(1, 1), NodeId{0}, nullptr);  // miss: 1 was evicted, evicts 0
  EXPECT_EQ(fabric.stats().cache_misses, 4u);
  EXPECT_EQ(fabric.stats().cache_hits, 1u);
  EXPECT_EQ(fabric.stats().cache_evictions, 2u);
}

TEST(RdmaCacheTest, ZeroCapacityDisablesCache) {
  int provider_calls = 0;
  RdmaFabric fabric({}, [&](const PageLocation&) {
    ++provider_calls;
    return FakePage(0);
  });
  fabric.ReadPage(Loc(1, 0), NodeId{0}, nullptr);
  fabric.ReadPage(Loc(1, 0), NodeId{0}, nullptr);
  EXPECT_EQ(provider_calls, 2);
  EXPECT_EQ(fabric.stats().cache_hits, 0u);
  EXPECT_EQ(fabric.stats().cache_misses, 0u);
}

TEST(RdmaCacheTest, InvalidateSandboxDropsItsPages) {
  RdmaFabric fabric({.page_cache_capacity = 8},
                    [](const PageLocation&) { return FakePage(0); });
  fabric.ReadPage(Loc(7, 0), NodeId{0}, nullptr);
  fabric.ReadPage(Loc(7, 1), NodeId{0}, nullptr);
  fabric.ReadPage(Loc(9, 0), NodeId{0}, nullptr);
  EXPECT_EQ(fabric.CachedPages(), 3u);
  fabric.InvalidateSandbox(SandboxId{7});
  EXPECT_EQ(fabric.CachedPages(), 1u);
  fabric.ReadPage(Loc(9, 0), NodeId{0}, nullptr);  // the survivor still hits
  EXPECT_EQ(fabric.stats().cache_hits, 1u);
}

}  // namespace
}  // namespace medes
