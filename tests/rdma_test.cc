#include "rdma/rdma.h"

#include <gtest/gtest.h>

#include <vector>

namespace medes {
namespace {

std::vector<uint8_t> FakePage(uint8_t fill) { return std::vector<uint8_t>(4096, fill); }

TEST(RdmaTest, ReadCostScalesWithSize) {
  RdmaFabric fabric({.per_read_latency = 3, .bandwidth_gbps = 10.0});
  // 4 KiB at 10 Gbps = 4096*8/10000 us ~= 3.27 us transfer + 3 us latency.
  SimDuration cost = fabric.ReadCost(4096, /*remote=*/true);
  EXPECT_GE(cost, 6);
  EXPECT_LE(cost, 7);
  EXPECT_GT(fabric.ReadCost(1 << 20, true), fabric.ReadCost(4096, true));
}

TEST(RdmaTest, LocalReadsCheaper) {
  RdmaFabric fabric;
  EXPECT_LT(fabric.ReadCost(4096, /*remote=*/false), fabric.ReadCost(4096, /*remote=*/true));
}

TEST(RdmaTest, ProviderRoutesBytesAndCountsStats) {
  RdmaFabric fabric({}, [](const PageLocation& loc) {
    return FakePage(static_cast<uint8_t>(loc.page_index));
  });
  SimDuration cost = 0;
  auto bytes =
      fabric.ReadPage({.node = 2, .sandbox = 1, .page_index = 7}, /*reader_node=*/0, &cost);
  ASSERT_EQ(bytes.size(), 4096u);
  EXPECT_EQ(bytes[0], 7);
  EXPECT_GT(cost, 0);
  EXPECT_EQ(fabric.stats().remote_reads, 1u);
  EXPECT_EQ(fabric.stats().remote_bytes, 4096u);
  EXPECT_EQ(fabric.stats().local_reads, 0u);
}

TEST(RdmaTest, LocalReadCountedSeparately) {
  RdmaFabric fabric({}, [](const PageLocation&) { return FakePage(1); });
  SimDuration cost = 0;
  fabric.ReadPage({.node = 5, .sandbox = 1, .page_index = 0}, /*reader_node=*/5, &cost);
  EXPECT_EQ(fabric.stats().local_reads, 1u);
  EXPECT_EQ(fabric.stats().remote_reads, 0u);
}

TEST(RdmaTest, CostAccumulates) {
  RdmaFabric fabric({}, [](const PageLocation&) { return FakePage(0); });
  SimDuration cost = 0;
  fabric.ReadPage({.node = 1, .sandbox = 1, .page_index = 0}, 0, &cost);
  SimDuration after_one = cost;
  fabric.ReadPage({.node = 1, .sandbox = 1, .page_index = 1}, 0, &cost);
  EXPECT_NEAR(static_cast<double>(cost), 2.0 * static_cast<double>(after_one), 1.0);
}

TEST(RdmaTest, MissingProviderThrows) {
  RdmaFabric fabric;
  SimDuration cost = 0;
  EXPECT_THROW(fabric.ReadPage({.node = 0, .sandbox = 1, .page_index = 0}, 0, &cost), RdmaError);
}

TEST(RdmaTest, UnavailablePageThrows) {
  RdmaFabric fabric({}, [](const PageLocation&) { return std::vector<uint8_t>{}; });
  SimDuration cost = 0;
  EXPECT_THROW(fabric.ReadPage({.node = 0, .sandbox = 1, .page_index = 0}, 0, &cost), RdmaError);
}

TEST(RdmaTest, NullCostPointerAccepted) {
  RdmaFabric fabric({}, [](const PageLocation&) { return FakePage(0); });
  EXPECT_NO_THROW(fabric.ReadPage({.node = 1, .sandbox = 1, .page_index = 0}, 0, nullptr));
}

TEST(RdmaTest, ResetStats) {
  RdmaFabric fabric({}, [](const PageLocation&) { return FakePage(0); });
  fabric.ReadPage({.node = 1, .sandbox = 1, .page_index = 0}, 0, nullptr);
  fabric.ResetStats();
  EXPECT_EQ(fabric.stats().remote_reads, 0u);
}

// ---- Base-page cache -------------------------------------------------------

PageLocation Loc(SandboxId sandbox, uint32_t page) {
  return {.node = 1, .sandbox = sandbox, .page_index = page};
}

TEST(RdmaCacheTest, RepeatReadsHitCache) {
  int provider_calls = 0;
  RdmaFabric fabric({.page_cache_capacity = 8}, [&](const PageLocation& loc) {
    ++provider_calls;
    return FakePage(static_cast<uint8_t>(loc.page_index));
  });
  SimDuration first_cost = 0;
  auto a = fabric.ReadPage(Loc(1, 0), /*reader_node=*/0, &first_cost);
  SimDuration second_cost = 0;
  auto b = fabric.ReadPage(Loc(1, 0), /*reader_node=*/0, &second_cost);
  EXPECT_EQ(a, b) << "cache returns the same bytes";
  EXPECT_EQ(provider_calls, 1) << "second read never reached the provider";
  EXPECT_LT(second_cost, first_cost) << "a hit is a DRAM copy, not a fabric read";
  EXPECT_EQ(fabric.stats().cache_hits, 1u);
  EXPECT_EQ(fabric.stats().cache_misses, 1u);
  EXPECT_EQ(fabric.stats().remote_reads, 1u) << "hits are not counted as fabric reads";
  EXPECT_DOUBLE_EQ(fabric.stats().CacheHitRate(), 0.5);
}

TEST(RdmaCacheTest, LruEvictsLeastRecentlyUsed) {
  RdmaFabric fabric({.page_cache_capacity = 2}, [](const PageLocation& loc) {
    return FakePage(static_cast<uint8_t>(loc.page_index));
  });
  fabric.ReadPage(Loc(1, 0), 0, nullptr);  // miss: cache [0]
  fabric.ReadPage(Loc(1, 1), 0, nullptr);  // miss: cache [1, 0]
  fabric.ReadPage(Loc(1, 0), 0, nullptr);  // hit: 0 promoted -> [0, 1]
  fabric.ReadPage(Loc(1, 2), 0, nullptr);  // miss: evicts 1 (LRU) -> [2, 0]
  EXPECT_EQ(fabric.stats().cache_evictions, 1u);
  fabric.ReadPage(Loc(1, 1), 0, nullptr);  // miss: 1 was evicted, evicts 0
  EXPECT_EQ(fabric.stats().cache_misses, 4u);
  EXPECT_EQ(fabric.stats().cache_hits, 1u);
  EXPECT_EQ(fabric.stats().cache_evictions, 2u);
}

TEST(RdmaCacheTest, ZeroCapacityDisablesCache) {
  int provider_calls = 0;
  RdmaFabric fabric({}, [&](const PageLocation&) {
    ++provider_calls;
    return FakePage(0);
  });
  fabric.ReadPage(Loc(1, 0), 0, nullptr);
  fabric.ReadPage(Loc(1, 0), 0, nullptr);
  EXPECT_EQ(provider_calls, 2);
  EXPECT_EQ(fabric.stats().cache_hits, 0u);
  EXPECT_EQ(fabric.stats().cache_misses, 0u);
}

TEST(RdmaCacheTest, InvalidateSandboxDropsItsPages) {
  RdmaFabric fabric({.page_cache_capacity = 8},
                    [](const PageLocation&) { return FakePage(0); });
  fabric.ReadPage(Loc(7, 0), 0, nullptr);
  fabric.ReadPage(Loc(7, 1), 0, nullptr);
  fabric.ReadPage(Loc(9, 0), 0, nullptr);
  EXPECT_EQ(fabric.CachedPages(), 3u);
  fabric.InvalidateSandbox(7);
  EXPECT_EQ(fabric.CachedPages(), 1u);
  fabric.ReadPage(Loc(9, 0), 0, nullptr);  // the survivor still hits
  EXPECT_EQ(fabric.stats().cache_hits, 1u);
}

}  // namespace
}  // namespace medes
