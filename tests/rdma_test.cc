#include "rdma/rdma.h"

#include <gtest/gtest.h>

#include <vector>

namespace medes {
namespace {

std::vector<uint8_t> FakePage(uint8_t fill) { return std::vector<uint8_t>(4096, fill); }

TEST(RdmaTest, ReadCostScalesWithSize) {
  RdmaFabric fabric({.per_read_latency = SimDuration{3}, .bandwidth_gbps = 10.0});
  // 4 KiB at 10 Gbps = 4096*8/10000 us ~= 3.27 us transfer + 3 us latency.
  SimDuration cost = fabric.ReadCost(Bytes{4096}, /*remote=*/true);
  EXPECT_GE(cost, SimDuration{6});
  EXPECT_LE(cost, SimDuration{7});
  EXPECT_GT(fabric.ReadCost(Bytes{1 << 20}, true), fabric.ReadCost(Bytes{4096}, true));
}

TEST(RdmaTest, LocalReadsCheaper) {
  RdmaFabric fabric;
  EXPECT_LT(fabric.ReadCost(Bytes{4096}, /*remote=*/false), fabric.ReadCost(Bytes{4096}, /*remote=*/true));
}

TEST(RdmaTest, ProviderRoutesBytesAndCountsStats) {
  RdmaFabric fabric({}, [](const PageLocation& loc) {
    return FakePage(static_cast<uint8_t>(loc.page_index.value()));
  });
  SimDuration cost;
  auto bytes =
      fabric.ReadPage({.node = NodeId{2}, .sandbox = SandboxId{1}, .page_index = PageIndex{7}}, /*reader_node=*/NodeId{0}, &cost);
  ASSERT_EQ(bytes.size(), 4096u);
  EXPECT_EQ(bytes[0], 7);
  EXPECT_GT(cost, SimDuration{0});
  EXPECT_EQ(fabric.stats().remote_reads, 1u);
  EXPECT_EQ(fabric.stats().remote_bytes, 4096u);
  EXPECT_EQ(fabric.stats().local_reads, 0u);
}

TEST(RdmaTest, LocalReadCountedSeparately) {
  RdmaFabric fabric({}, [](const PageLocation&) { return FakePage(1); });
  SimDuration cost;
  (void)fabric.ReadPage({.node = NodeId{5}, .sandbox = SandboxId{1}, .page_index = PageIndex{0}}, /*reader_node=*/NodeId{5}, &cost);
  EXPECT_EQ(fabric.stats().local_reads, 1u);
  EXPECT_EQ(fabric.stats().remote_reads, 0u);
}

TEST(RdmaTest, CostAccumulates) {
  RdmaFabric fabric({}, [](const PageLocation&) { return FakePage(0); });
  SimDuration cost;
  (void)fabric.ReadPage({.node = NodeId{1}, .sandbox = SandboxId{1}, .page_index = PageIndex{0}}, NodeId{0}, &cost);
  SimDuration after_one = cost;
  (void)fabric.ReadPage({.node = NodeId{1}, .sandbox = SandboxId{1}, .page_index = PageIndex{1}}, NodeId{0}, &cost);
  EXPECT_NEAR(static_cast<double>(cost.value()), 2.0 * static_cast<double>(after_one.value()), 1.0);
}

TEST(RdmaTest, MissingProviderThrows) {
  RdmaFabric fabric;
  SimDuration cost;
  EXPECT_THROW(fabric.ReadPage({.node = NodeId{0}, .sandbox = SandboxId{1}, .page_index = PageIndex{0}}, NodeId{0}, &cost), RdmaError);
}

TEST(RdmaTest, UnavailablePageThrows) {
  RdmaFabric fabric({}, [](const PageLocation&) { return std::vector<uint8_t>{}; });
  SimDuration cost;
  EXPECT_THROW(fabric.ReadPage({.node = NodeId{0}, .sandbox = SandboxId{1}, .page_index = PageIndex{0}}, NodeId{0}, &cost), RdmaError);
}

TEST(RdmaTest, NullCostPointerAccepted) {
  RdmaFabric fabric({}, [](const PageLocation&) { return FakePage(0); });
  EXPECT_NO_THROW(fabric.ReadPage({.node = NodeId{1}, .sandbox = SandboxId{1}, .page_index = PageIndex{0}}, NodeId{0}, nullptr));
}

TEST(RdmaTest, ResetStats) {
  RdmaFabric fabric({}, [](const PageLocation&) { return FakePage(0); });
  (void)fabric.ReadPage({.node = NodeId{1}, .sandbox = SandboxId{1}, .page_index = PageIndex{0}}, NodeId{0}, nullptr);
  fabric.ResetStats();
  EXPECT_EQ(fabric.stats().remote_reads, 0u);
}

// ---- Base-page cache -------------------------------------------------------

PageLocation Loc(uint64_t sandbox, uint32_t page) {
  return {.node = NodeId{1}, .sandbox = SandboxId{sandbox}, .page_index = PageIndex{page}};
}

TEST(RdmaCacheTest, RepeatReadsHitCache) {
  int provider_calls = 0;
  RdmaFabric fabric({.page_cache_capacity = 8}, [&](const PageLocation& loc) {
    ++provider_calls;
    return FakePage(static_cast<uint8_t>(loc.page_index.value()));
  });
  SimDuration first_cost;
  auto a = fabric.ReadPage(Loc(1, 0), /*reader_node=*/NodeId{0}, &first_cost);
  SimDuration second_cost;
  auto b = fabric.ReadPage(Loc(1, 0), /*reader_node=*/NodeId{0}, &second_cost);
  EXPECT_EQ(a, b) << "cache returns the same bytes";
  EXPECT_EQ(provider_calls, 1) << "second read never reached the provider";
  EXPECT_LT(second_cost, first_cost) << "a hit is a DRAM copy, not a fabric read";
  EXPECT_EQ(fabric.stats().cache_hits, 1u);
  EXPECT_EQ(fabric.stats().cache_misses, 1u);
  EXPECT_EQ(fabric.stats().remote_reads, 1u) << "hits are not counted as fabric reads";
  EXPECT_DOUBLE_EQ(fabric.stats().CacheHitRate(), 0.5);
}

TEST(RdmaCacheTest, LruEvictsLeastRecentlyUsed) {
  RdmaFabric fabric({.page_cache_capacity = 2}, [](const PageLocation& loc) {
    return FakePage(static_cast<uint8_t>(loc.page_index.value()));
  });
  (void)fabric.ReadPage(Loc(1, 0), NodeId{0}, nullptr);  // miss: cache [0]
  (void)fabric.ReadPage(Loc(1, 1), NodeId{0}, nullptr);  // miss: cache [1, 0]
  (void)fabric.ReadPage(Loc(1, 0), NodeId{0}, nullptr);  // hit: 0 promoted -> [0, 1]
  (void)fabric.ReadPage(Loc(1, 2), NodeId{0}, nullptr);  // miss: evicts 1 (LRU) -> [2, 0]
  EXPECT_EQ(fabric.stats().cache_evictions, 1u);
  (void)fabric.ReadPage(Loc(1, 1), NodeId{0}, nullptr);  // miss: 1 was evicted, evicts 0
  EXPECT_EQ(fabric.stats().cache_misses, 4u);
  EXPECT_EQ(fabric.stats().cache_hits, 1u);
  EXPECT_EQ(fabric.stats().cache_evictions, 2u);
}

TEST(RdmaCacheTest, ZeroCapacityDisablesCache) {
  int provider_calls = 0;
  RdmaFabric fabric({}, [&](const PageLocation&) {
    ++provider_calls;
    return FakePage(0);
  });
  (void)fabric.ReadPage(Loc(1, 0), NodeId{0}, nullptr);
  (void)fabric.ReadPage(Loc(1, 0), NodeId{0}, nullptr);
  EXPECT_EQ(provider_calls, 2);
  EXPECT_EQ(fabric.stats().cache_hits, 0u);
  EXPECT_EQ(fabric.stats().cache_misses, 0u);
}

// ---- Batched reads ---------------------------------------------------------

PageLocation NodeLoc(int node, uint32_t page) {
  return {.node = NodeId{node}, .sandbox = SandboxId{1}, .page_index = PageIndex{page}};
}

TEST(RdmaBatchTest, CoalescesIntoOneMessagePerOwnerNode) {
  auto provider = [](const PageLocation& loc) {
    return FakePage(static_cast<uint8_t>(loc.page_index.value()));
  };
  RdmaFabric fabric({}, provider);
  const std::vector<PageLocation> locations = {NodeLoc(1, 0), NodeLoc(1, 1), NodeLoc(2, 2),
                                               NodeLoc(1, 3), NodeLoc(2, 4)};
  SimDuration batched_cost;
  auto results = fabric.ReadPageBatch(locations, /*reader_node=*/NodeId{0}, &batched_cost);
  ASSERT_EQ(results.size(), 5u);
  for (size_t i = 0; i < results.size(); ++i) {
    ASSERT_EQ(results[i].size(), 4096u) << i;
    EXPECT_EQ(results[i][0], locations[i].page_index.value()) << "positionally aligned";
  }
  EXPECT_EQ(fabric.stats().batch_messages, 2u) << "two owner nodes, two wire messages";
  EXPECT_EQ(fabric.stats().batch_pages, 5u);
  EXPECT_EQ(fabric.stats().remote_reads, 5u);
  EXPECT_EQ(fabric.stats().remote_bytes, 5u * 4096u);

  // Coalescing amortizes the per-message latency: the same pages read one by
  // one pay it five times instead of twice.
  RdmaFabric serial({}, provider);
  SimDuration serial_cost;
  for (const PageLocation& loc : locations) {
    (void)serial.ReadPage(loc, NodeId{0}, &serial_cost);
  }
  EXPECT_LT(batched_cost, serial_cost);
}

TEST(RdmaBatchTest, LocalGroupCountedAsLocalReads) {
  RdmaFabric fabric({}, [](const PageLocation&) { return FakePage(0); });
  const std::vector<PageLocation> locations = {NodeLoc(3, 0), NodeLoc(3, 1)};
  SimDuration cost;
  (void)fabric.ReadPageBatch(locations, /*reader_node=*/NodeId{3}, &cost);
  EXPECT_EQ(fabric.stats().local_reads, 2u);
  EXPECT_EQ(fabric.stats().remote_reads, 0u);
  EXPECT_EQ(fabric.stats().batch_messages, 1u);
}

// Regression pin: a batch mixing cached and uncached locations must count
// each distinct location exactly once — one hit (cached) or one miss
// (fetched), with in-batch duplicates hit-priced as aliases — and never
// re-count the hits when charging the miss groups.
TEST(RdmaBatchTest, MixedCachedAndUncachedBatchCountsEachDistinctLocationOnce) {
  int provider_calls = 0;
  RdmaFabric fabric({.page_cache_capacity = 8}, [&](const PageLocation& loc) {
    ++provider_calls;
    return FakePage(static_cast<uint8_t>(loc.page_index.value()));
  });
  // Warm the cache with page 0: one miss, one provider call.
  (void)fabric.ReadPage(NodeLoc(1, 0), NodeId{0}, nullptr);
  ASSERT_EQ(fabric.stats().cache_misses, 1u);

  // Batch = cached page, two uncached pages, and a duplicate of the cached
  // one. Distinct: one hit (page 0) + two misses (pages 1, 2); the repeat of
  // page 0 aliases the first copy at hit price.
  const std::vector<PageLocation> batch = {NodeLoc(1, 0), NodeLoc(1, 1), NodeLoc(1, 0),
                                           NodeLoc(1, 2)};
  SimDuration cost;
  auto results = fabric.ReadPageBatch(batch, NodeId{0}, &cost);
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(results[0], results[2]) << "alias resolves to the same bytes";
  EXPECT_EQ(provider_calls, 3) << "cached page never re-fetched";
  EXPECT_EQ(fabric.stats().cache_hits, 2u) << "one cached hit + one alias, not double-counted";
  EXPECT_EQ(fabric.stats().cache_misses, 3u) << "warm-up miss + the two uncached pages";
  EXPECT_EQ(fabric.stats().batch_messages, 1u);
  EXPECT_EQ(fabric.stats().batch_pages, 2u) << "only the misses cross the wire";
  EXPECT_EQ(fabric.stats().remote_reads, 3u) << "warm-up read + two batched fetches";

  // Re-issuing the same batch is now all hits: no new messages, no fetches.
  (void)fabric.ReadPageBatch(batch, NodeId{0}, &cost);
  EXPECT_EQ(provider_calls, 3);
  EXPECT_EQ(fabric.stats().cache_hits, 6u) << "three distinct hits + one alias";
  EXPECT_EQ(fabric.stats().cache_misses, 3u);
  EXPECT_EQ(fabric.stats().batch_messages, 1u);
}

TEST(RdmaBatchTest, DuplicatesWithoutCacheAliasButCountNoHits) {
  int provider_calls = 0;
  RdmaFabric fabric({}, [&](const PageLocation&) {
    ++provider_calls;
    return FakePage(9);
  });
  const std::vector<PageLocation> batch = {NodeLoc(1, 5), NodeLoc(1, 5)};
  SimDuration cost;
  auto results = fabric.ReadPageBatch(batch, NodeId{0}, &cost);
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(provider_calls, 1) << "duplicate served from the batch's own copy";
  EXPECT_EQ(fabric.stats().batch_pages, 1u);
  EXPECT_EQ(fabric.stats().cache_hits, 0u) << "no cache, no hits to claim";
  EXPECT_EQ(fabric.stats().cache_misses, 0u);
}

TEST(RdmaBatchTest, EmptyBatchIsFree) {
  RdmaFabric fabric({}, [](const PageLocation&) { return FakePage(0); });
  SimDuration cost;
  auto results = fabric.ReadPageBatch({}, NodeId{0}, &cost);
  EXPECT_TRUE(results.empty());
  EXPECT_EQ(cost, SimDuration{});
  EXPECT_EQ(fabric.stats().batch_messages, 0u);
}

TEST(RdmaCacheTest, InvalidateSandboxDropsItsPages) {
  RdmaFabric fabric({.page_cache_capacity = 8},
                    [](const PageLocation&) { return FakePage(0); });
  (void)fabric.ReadPage(Loc(7, 0), NodeId{0}, nullptr);
  (void)fabric.ReadPage(Loc(7, 1), NodeId{0}, nullptr);
  (void)fabric.ReadPage(Loc(9, 0), NodeId{0}, nullptr);
  EXPECT_EQ(fabric.CachedPages(), 3u);
  fabric.InvalidateSandbox(SandboxId{7});
  EXPECT_EQ(fabric.CachedPages(), 1u);
  (void)fabric.ReadPage(Loc(9, 0), NodeId{0}, nullptr);  // the survivor still hits
  EXPECT_EQ(fabric.stats().cache_hits, 1u);
}

}  // namespace
}  // namespace medes
