// Log-corruption fuzz for the persistent state store (src/store/log_store).
//
// Exhaustively damages a known-good log — truncation at every byte offset,
// a bit flip at every byte, duplicate/stale/gapped sequence numbers, and a
// corrupted checkpoint — and asserts the recovery contract every time:
//
//   1. Prefix-consistent: the recovered state equals the result of applying
//      the longest undamaged in-sequence record prefix, or is empty
//      (fail closed). Recovery never applies a record after the first bad
//      one and never reorders.
//   2. Never a wrong base page: every recovered page's bytes equal what was
//      originally appended for that (sandbox, page) — damaged bytes are
//      dropped, never served.
//   3. Honest `clean` flag: any drop (torn tail, corrupt record, discarded
//      checkpoint) clears it.
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "store/log_store.h"
#include "store/record.h"
#include "store/state_store.h"

namespace medes::store {
namespace {

// ---------------------------------------------------------------------------
// Raw-file helpers (the whole point of this test is damaging the store's
// files behind its back).

std::vector<uint8_t> ReadFileBytes(const std::string& path) {
  // medes-lint: allow(direct-filesystem) fuzz harness reads the store's log
  std::FILE* f = std::fopen(path.c_str(), "rb");
  std::vector<uint8_t> bytes;
  if (f == nullptr) {
    return bytes;
  }
  std::fseek(f, 0, SEEK_END);
  bytes.resize(static_cast<size_t>(std::ftell(f)));
  std::fseek(f, 0, SEEK_SET);
  const size_t read = std::fread(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  bytes.resize(read);
  return bytes;
}

void WriteFileBytes(const std::string& path, const std::vector<uint8_t>& bytes) {
  // medes-lint: allow(direct-filesystem) fuzz harness rewrites the store's log
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
}

void RemovePath(const std::string& path) {
  // medes-lint: allow(direct-filesystem) fuzz harness cleanup
  std::filesystem::remove_all(path);
}

std::string FreshDir(const char* name) {
  // medes-lint: allow(direct-filesystem) fuzz harness scaffolding
  const std::string dir = (std::filesystem::temp_directory_path() / name).string();
  RemovePath(dir);
  // medes-lint: allow(direct-filesystem) fuzz harness scaffolding
  std::filesystem::create_directories(dir);
  return dir;
}

// ---------------------------------------------------------------------------
// Reference model: the true history and its prefix evaluation.

struct ModelSandbox {
  NodeId node = kInvalidNode;
  size_t num_fingerprints = 0;
  std::map<PageIndex, std::vector<uint8_t>> pages;
};

using ModelState = std::map<SandboxId, ModelSandbox>;

void ApplyToModel(ModelState& state, const Record& rec) {
  switch (rec.type) {
    case RecordType::kInsertSandbox: {
      ModelSandbox& sb = state[rec.sandbox];
      sb.node = rec.node;
      sb.num_fingerprints = rec.fingerprints.size();
      break;
    }
    case RecordType::kRemoveSandbox:
      state.erase(rec.sandbox);
      break;
    case RecordType::kBasePageWrite: {
      ModelSandbox& sb = state[rec.sandbox];
      if (sb.node == kInvalidNode) {
        sb.node = rec.node;
      }
      sb.pages[rec.page_index] = rec.page_bytes;
      break;
    }
  }
}

// Mirrors the recovery replay rules over arbitrary (possibly damaged) bytes:
// decode records front to back, skip stale seqs, stop at the first torn /
// corrupt / gapped record. What this returns is the *only* state a correct
// recovery may produce from those bytes (prefix consistency).
ModelState EvalPrefix(std::span<const uint8_t> bytes, uint64_t first_seq = 1) {
  ModelState state;
  uint64_t expected = first_seq;
  size_t pos = 0;
  while (pos < bytes.size()) {
    const DecodeResult r = DecodeRecord(bytes.subspan(pos));
    if (r.status != DecodeStatus::kOk) {
      break;
    }
    pos += r.consumed;
    if (r.record.seq < expected) {
      continue;  // stale duplicate
    }
    if (r.record.seq > expected) {
      break;  // gap: fail closed at the prefix
    }
    ApplyToModel(state, r.record);
    ++expected;
  }
  return state;
}

void ExpectMatchesModel(const RecoveredState& recovered, const ModelState& model) {
  ASSERT_EQ(recovered.sandboxes.size(), model.size());
  auto it = model.begin();
  for (const RecoveredSandbox& sb : recovered.sandboxes) {
    ASSERT_NE(it, model.end());
    EXPECT_EQ(sb.sandbox, it->first);
    EXPECT_EQ(sb.node, it->second.node);
    EXPECT_EQ(sb.fingerprints.size(), it->second.num_fingerprints);
    ASSERT_EQ(sb.pages.size(), it->second.pages.size());
    auto pit = it->second.pages.begin();
    for (const auto& [page, page_bytes] : sb.pages) {
      EXPECT_EQ(page, pit->first);
      EXPECT_EQ(page_bytes, pit->second);
      ++pit;
    }
    ++it;
  }
}

// Everything the history ever wrote, ignoring removals — a truncated prefix
// may legitimately still contain a sandbox the full history later removed,
// but its bytes must still match what was appended.
ModelState EvalUnion(std::span<const uint8_t> bytes) {
  ModelState state;
  size_t pos = 0;
  while (pos < bytes.size()) {
    const DecodeResult r = DecodeRecord(bytes.subspan(pos));
    if (r.status != DecodeStatus::kOk) {
      break;
    }
    pos += r.consumed;
    if (r.record.type != RecordType::kRemoveSandbox) {
      ApplyToModel(state, r.record);
    }
  }
  return state;
}

// Property 2: every recovered page must byte-match the true history — the
// damaged log may lose writes, but must never serve altered bytes.
void ExpectNoWrongPages(const RecoveredState& recovered, const ModelState& truth) {
  for (const RecoveredSandbox& sb : recovered.sandboxes) {
    const auto it = truth.find(sb.sandbox);
    ASSERT_NE(it, truth.end()) << "recovered a sandbox that never existed";
    for (const auto& [page, page_bytes] : sb.pages) {
      const auto pit = it->second.pages.find(page);
      ASSERT_NE(pit, it->second.pages.end()) << "recovered a page never written";
      EXPECT_EQ(page_bytes, pit->second) << "recovered page bytes differ from history";
    }
  }
}

// ---------------------------------------------------------------------------
// Fixture: a known-good log of 9 records (no checkpoint), small pages so the
// exhaustive sweeps stay fast.

struct Fixture {
  std::string dir;
  std::string log_path;
  std::vector<uint8_t> good_log;
  ModelState truth;  // full-history state
  ModelState union_truth;  // every page ever written (removals ignored)
};

std::vector<PageFingerprint> Fps(int pages) {
  std::vector<PageFingerprint> fps(static_cast<size_t>(pages));
  uint64_t key = 0x42;
  for (PageFingerprint& fp : fps) {
    fp.chunks.push_back(SampledChunk{key++, 0});
    fp.chunks.push_back(SampledChunk{key++, 64});
  }
  return fps;
}

std::vector<uint8_t> Page(uint8_t fill) { return std::vector<uint8_t>(128, fill); }

Fixture BuildFixture(const char* name) {
  Fixture fx;
  fx.dir = FreshDir(name);
  fx.log_path = fx.dir + "/medes.log";
  StoreOptions opts;
  opts.backend = StoreBackend::kPersistent;
  opts.directory = fx.dir;
  opts.checkpoint_every_records = 1u << 30;  // never: keep everything in the log
  {
    LogStore store(opts);
    store.AppendInsertSandbox(NodeId{0}, SandboxId{1}, Fps(2));
    store.AppendBasePage(NodeId{0}, SandboxId{1}, PageIndex{0}, Page(0xa1));
    store.AppendBasePage(NodeId{0}, SandboxId{1}, PageIndex{1}, Page(0xa2));
    store.AppendInsertSandbox(NodeId{1}, SandboxId{2}, Fps(1));
    store.AppendBasePage(NodeId{1}, SandboxId{2}, PageIndex{0}, Page(0xb1));
    store.AppendRemoveSandbox(SandboxId{1});
    store.AppendInsertSandbox(NodeId{2}, SandboxId{3}, Fps(1));
    store.AppendBasePage(NodeId{2}, SandboxId{3}, PageIndex{2}, Page(0xc1));
    store.AppendRemoveSandbox(SandboxId{2});
  }
  fx.good_log = ReadFileBytes(fx.log_path);
  fx.truth = EvalPrefix(fx.good_log);
  fx.union_truth = EvalUnion(fx.good_log);
  return fx;
}

RecoveredState RecoverDir(const std::string& dir) {
  StoreOptions opts;
  opts.backend = StoreBackend::kPersistent;
  opts.directory = dir;
  opts.checkpoint_every_records = 1u << 30;
  LogStore store(opts);
  return store.Recover();
}

// ---------------------------------------------------------------------------

TEST(StoreRecoveryFuzzTest, CleanLogRecoversFully) {
  const Fixture fx = BuildFixture("medes_fuzz_clean");
  const RecoveredState r = RecoverDir(fx.dir);
  EXPECT_TRUE(r.clean);
  EXPECT_EQ(r.log_records, 9u);
  ExpectMatchesModel(r, fx.truth);
  RemovePath(fx.dir);
}

TEST(StoreRecoveryFuzzTest, TruncationAtEveryByteOffset) {
  const Fixture fx = BuildFixture("medes_fuzz_trunc");
  for (size_t len = 0; len < fx.good_log.size(); ++len) {
    const std::vector<uint8_t> damaged(fx.good_log.begin(),
                                       fx.good_log.begin() + static_cast<ptrdiff_t>(len));
    WriteFileBytes(fx.log_path, damaged);
    const RecoveredState r = RecoverDir(fx.dir);
    const ModelState expect = EvalPrefix(damaged);
    ExpectMatchesModel(r, expect);
    ExpectNoWrongPages(r, fx.union_truth);
    // Any byte short of the full log is a damaged history: the flag must say
    // so unless the cut landed exactly on a record boundary.
    if (r.torn_bytes > 0 || r.corrupt_records > 0) {
      EXPECT_FALSE(r.clean) << "len=" << len;
    }
    if (::testing::Test::HasFatalFailure()) {
      FAIL() << "at truncation length " << len;
    }
  }
  RemovePath(fx.dir);
}

TEST(StoreRecoveryFuzzTest, BitFlipAtEveryByte) {
  const Fixture fx = BuildFixture("medes_fuzz_flip");
  for (size_t i = 0; i < fx.good_log.size(); ++i) {
    std::vector<uint8_t> damaged = fx.good_log;
    damaged[i] ^= static_cast<uint8_t>(1u << (i % 8));
    WriteFileBytes(fx.log_path, damaged);
    const RecoveredState r = RecoverDir(fx.dir);
    const ModelState expect = EvalPrefix(damaged);
    ExpectMatchesModel(r, expect);
    ExpectNoWrongPages(r, fx.union_truth);
    EXPECT_FALSE(r.clean) << "flip at byte " << i;  // a record was always lost
    if (::testing::Test::HasFatalFailure()) {
      FAIL() << "at flipped byte " << i;
    }
  }
  RemovePath(fx.dir);
}

TEST(StoreRecoveryFuzzTest, DuplicateSeqIsSkippedGapFailsClosed) {
  const std::string dir = FreshDir("medes_fuzz_seq");
  StoreOptions opts;
  opts.backend = StoreBackend::kPersistent;
  opts.directory = dir;
  opts.checkpoint_every_records = 1u << 30;

  // Duplicate: seqs 1,2,2,3 — the stale duplicate is skipped, 3 applies.
  std::vector<uint8_t> log;
  EncodeInsertSandbox(1, NodeId{0}, SandboxId{1}, Fps(1), log);
  EncodeBasePageWrite(2, NodeId{0}, SandboxId{1}, PageIndex{0}, Page(0x11), log);
  EncodeBasePageWrite(2, NodeId{0}, SandboxId{1}, PageIndex{0}, Page(0x99), log);  // stale dup
  EncodeInsertSandbox(3, NodeId{0}, SandboxId{2}, Fps(1), log);
  WriteFileBytes(dir + "/medes.log", log);
  {
    const RecoveredState r = RecoverDir(dir);
    EXPECT_EQ(r.log_records, 3u);
    EXPECT_EQ(r.stale_records, 1u);
    ASSERT_EQ(r.sandboxes.size(), 2u);
    // The duplicate's 0x99 payload must NOT have replaced the applied 0x11.
    EXPECT_EQ(r.sandboxes[0].pages[0].second, Page(0x11));
  }

  // Gap: seqs 1,3 — replay must stop before 3 and report the damage.
  log.clear();
  EncodeInsertSandbox(1, NodeId{0}, SandboxId{1}, Fps(1), log);
  EncodeInsertSandbox(3, NodeId{0}, SandboxId{2}, Fps(1), log);
  WriteFileBytes(dir + "/medes.log", log);
  {
    const RecoveredState r = RecoverDir(dir);
    EXPECT_FALSE(r.clean);
    EXPECT_EQ(r.log_records, 1u);
    ASSERT_EQ(r.sandboxes.size(), 1u);
    EXPECT_EQ(r.sandboxes[0].sandbox, SandboxId{1});
  }
  RemovePath(dir);
}

TEST(StoreRecoveryFuzzTest, CorruptCheckpointFailsClosed) {
  const std::string dir = FreshDir("medes_fuzz_ckpt");
  StoreOptions opts;
  opts.backend = StoreBackend::kPersistent;
  opts.directory = dir;
  opts.checkpoint_every_records = 2;  // force checkpoints
  {
    LogStore store(opts);
    store.AppendInsertSandbox(NodeId{0}, SandboxId{1}, Fps(1));
    store.AppendBasePage(NodeId{0}, SandboxId{1}, PageIndex{0}, Page(0xaa));
    store.AppendInsertSandbox(NodeId{0}, SandboxId{2}, Fps(1));
    ASSERT_GT(store.durability_stats().checkpoints, 0u);
  }
  const std::string ckpt = dir + "/medes.ckpt";
  std::vector<uint8_t> bytes = ReadFileBytes(ckpt);
  ASSERT_FALSE(bytes.empty());
  // Damage a byte in the middle of the checkpoint body.
  bytes[bytes.size() / 2] ^= 0x40;
  WriteFileBytes(ckpt, bytes);

  const RecoveredState r = RecoverDir(dir);
  // All-or-nothing: a half-good checkpoint is unusable, and the log deltas
  // have no base to apply to — recovery is empty and flagged.
  EXPECT_FALSE(r.clean);
  EXPECT_TRUE(r.sandboxes.empty());
  RemovePath(dir);
}

}  // namespace
}  // namespace medes::store
