#include "chunking/rabin.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "common/rng.h"

namespace medes {
namespace {

std::vector<uint8_t> RandomBytes(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> out(n);
  for (auto& b : out) {
    b = static_cast<uint8_t>(rng.Next());
  }
  return out;
}

TEST(RollingHashTest, RollMatchesRecompute) {
  auto data = RandomBytes(1000, 1);
  RollingHash rh(64);
  uint64_t h = rh.Init(data);
  for (size_t i = 64; i < data.size(); ++i) {
    h = rh.Roll(h, data[i - 64], data[i]);
    uint64_t direct = rh.Init(std::span<const uint8_t>(data).subspan(i - 63, 64));
    ASSERT_EQ(h, direct) << "at position " << i - 63;
  }
}

TEST(RollingHashTest, WindowOfOne) {
  auto data = RandomBytes(16, 2);
  RollingHash rh(1);
  uint64_t h = rh.Init(data);
  EXPECT_EQ(h, data[0]);
  h = rh.Roll(h, data[0], data[1]);
  EXPECT_EQ(h, data[1]);
}

TEST(RollingHashTest, ZeroWindowRejected) {
  EXPECT_THROW(RollingHash(0), std::invalid_argument);
}

TEST(RollingHashTest, InitRejectsShortData) {
  RollingHash rh(64);
  auto data = RandomBytes(63, 9);
  EXPECT_THROW(rh.Init(data), std::invalid_argument);
  EXPECT_THROW(rh.Init(std::span<const uint8_t>{}), std::invalid_argument);
  std::vector<uint64_t> out(1);
  EXPECT_THROW(rh.BulkHash(data, out.data()), std::invalid_argument);
}

TEST(RollingHashTest, InitAcceptsExactWindow) {
  RollingHash rh(64);
  auto data = RandomBytes(64, 10);
  EXPECT_NO_THROW(rh.Init(data));
}

TEST(RollingHashTest, ContentDefinedAcrossShifts) {
  // The same 64 bytes hash identically wherever they sit.
  auto chunk = RandomBytes(64, 3);
  std::vector<uint8_t> a = RandomBytes(100, 4);
  a.insert(a.end(), chunk.begin(), chunk.end());
  std::vector<uint8_t> b = RandomBytes(37, 5);
  b.insert(b.end(), chunk.begin(), chunk.end());
  RollingHash rh(64);
  uint64_t ha = rh.Init(std::span<const uint8_t>(a).subspan(100, 64));
  uint64_t hb = rh.Init(std::span<const uint8_t>(b).subspan(37, 64));
  EXPECT_EQ(ha, hb);
}

TEST(AllWindowHashesTest, CountAndAgreement) {
  auto data = RandomBytes(256, 6);
  auto hashes = AllWindowHashes(data, 64);
  ASSERT_EQ(hashes.size(), 256u - 64 + 1);
  RollingHash rh(64);
  EXPECT_EQ(hashes.front(), rh.Init(data));
  EXPECT_EQ(hashes.back(), rh.Init(std::span<const uint8_t>(data).subspan(192, 64)));
}

TEST(AllWindowHashesTest, ShortInputEmpty) {
  auto data = RandomBytes(10, 7);
  EXPECT_TRUE(AllWindowHashes(data, 64).empty());
}

TEST(AllWindowHashesTest, ExactWindowOneHash) {
  auto data = RandomBytes(64, 8);
  EXPECT_EQ(AllWindowHashes(data, 64).size(), 1u);
}

}  // namespace
}  // namespace medes
