// Determinism of the parallel dedup/restore pipeline: every DedupOpResult
// counter, modelled duration, patch record, and patch byte must be
// bit-identical between the serial reference (num_threads = 1) and a wide
// pipeline, with the base-page cache enabled in both.
#include <gtest/gtest.h>

#include <vector>

#include "dedupagent/dedup_agent.h"

namespace medes {
namespace {

ClusterOptions SmallCluster() {
  ClusterOptions opts;
  opts.num_nodes = 2;
  opts.node_memory_mb = 4096;
  opts.bytes_per_mb = 16384;
  return opts;
}

DedupAgentOptions AgentOpts(size_t num_threads) {
  DedupAgentOptions opts;
  opts.num_threads = num_threads;
  return opts;
}

// One self-contained environment: cluster, registry, cached fabric, agent.
struct Env {
  explicit Env(size_t num_threads)
      : cluster(SmallCluster()),
        fabric({.page_cache_capacity = 512},
               [this](const PageLocation& loc) { return cluster.ReadBasePage(loc); }),
        agent(cluster, registry, fabric, AgentOpts(num_threads)) {}

  Sandbox& WarmSandbox(const std::string& name, NodeId node, SimTime now = 0) {
    Sandbox& sb = cluster.Spawn(ProfileByName(name), node, now);
    cluster.MarkWarm(sb, now);
    return sb;
  }

  Cluster cluster;
  FingerprintRegistry registry;
  RdmaFabric fabric;
  DedupAgent agent;
};

void ExpectSameDedupResult(const DedupOpResult& a, const DedupOpResult& b,
                           const std::string& what) {
  EXPECT_EQ(a.pages_total, b.pages_total) << what;
  EXPECT_EQ(a.pages_deduped, b.pages_deduped) << what;
  EXPECT_EQ(a.pages_zero, b.pages_zero) << what;
  EXPECT_EQ(a.pages_unique, b.pages_unique) << what;
  EXPECT_EQ(a.patch_bytes, b.patch_bytes) << what;
  EXPECT_EQ(a.saved_bytes, b.saved_bytes) << what;
  EXPECT_EQ(a.same_function_pages, b.same_function_pages) << what;
  EXPECT_EQ(a.cross_function_pages, b.cross_function_pages) << what;
  EXPECT_EQ(a.checkpoint_time, b.checkpoint_time) << what;
  EXPECT_EQ(a.lookup_time, b.lookup_time) << what;
  EXPECT_EQ(a.patch_time, b.patch_time) << what;
  EXPECT_EQ(a.total_time, b.total_time) << what;
}

void ExpectSamePatches(const Sandbox& a, const Sandbox& b) {
  ASSERT_EQ(a.patches.size(), b.patches.size());
  for (size_t i = 0; i < a.patches.size(); ++i) {
    EXPECT_EQ(a.patches[i].page, b.patches[i].page) << "patch " << i;
    ASSERT_EQ(a.patches[i].bases.size(), b.patches[i].bases.size()) << "patch " << i;
    for (size_t j = 0; j < a.patches[i].bases.size(); ++j) {
      EXPECT_EQ(a.patches[i].bases[j], b.patches[i].bases[j]) << "patch " << i << " base " << j;
    }
  }
  ASSERT_TRUE(a.checkpoint.has_value());
  ASSERT_TRUE(b.checkpoint.has_value());
  const MemoryCheckpoint& ca = *a.checkpoint;
  const MemoryCheckpoint& cb = *b.checkpoint;
  ASSERT_EQ(ca.NumPages(), cb.NumPages());
  for (size_t page = 0; page < ca.NumPages(); ++page) {
    ASSERT_EQ(ca.SlotState(page), cb.SlotState(page)) << "page " << page;
    if (ca.SlotState(page) == PageSlotState::kPatched) {
      auto pa = ca.PatchData(page);
      auto pb = cb.PatchData(page);
      ASSERT_EQ(pa.size(), pb.size()) << "page " << page;
      EXPECT_TRUE(std::equal(pa.begin(), pa.end(), pb.begin()))
          << "patch bytes differ at page " << page;
    }
  }
}

TEST(DedupPipelineTest, ParallelDedupOpMatchesSerialPageForPage) {
  Env serial(1);
  Env parallel(8);
  ASSERT_EQ(serial.agent.NumThreads(), 1u);
  ASSERT_EQ(parallel.agent.NumThreads(), 8u);

  // Identical clusters (same seed, same operation sequence) in both envs:
  // a base per function plus victims on both nodes, cross- and same-function.
  for (Env* env : {&serial, &parallel}) {
    Sandbox& vanilla_base = env->WarmSandbox("Vanilla", 0);
    env->agent.DesignateBase(vanilla_base);
    Sandbox& linalg_base = env->WarmSandbox("LinAlg", 0);
    env->agent.DesignateBase(linalg_base);
  }

  const struct {
    const char* function;
    NodeId node;
  } victims[] = {{"Vanilla", 0}, {"Vanilla", 1}, {"LinAlg", 1}, {"FeatureGen", 0}};

  std::vector<SandboxId> serial_ids;
  std::vector<SandboxId> parallel_ids;
  for (const auto& v : victims) {
    Sandbox& sa = serial.WarmSandbox(v.function, v.node, 10);
    Sandbox& sb = parallel.WarmSandbox(v.function, v.node, 10);
    ASSERT_EQ(sa.id, sb.id) << "environments diverged";
    DedupOpResult ra = serial.agent.DedupOp(sa, 20);
    DedupOpResult rb = parallel.agent.DedupOp(sb, 20);
    ExpectSameDedupResult(ra, rb, v.function);
    ExpectSamePatches(sa, sb);
    EXPECT_GT(ra.pages_total, 0u);
    serial_ids.push_back(sa.id);
    parallel_ids.push_back(sb.id);
  }
  // The dedup path exercised the cache identically in both environments.
  EXPECT_EQ(serial.fabric.stats().cache_hits, parallel.fabric.stats().cache_hits);
  EXPECT_EQ(serial.fabric.stats().cache_misses, parallel.fabric.stats().cache_misses);

  // Restores: identical modelled costs and byte-exact reconstructions.
  for (size_t i = 0; i < serial_ids.size(); ++i) {
    Sandbox* sa = serial.cluster.Find(serial_ids[i]);
    Sandbox* sb = parallel.cluster.Find(parallel_ids[i]);
    ASSERT_NE(sa, nullptr);
    ASSERT_NE(sb, nullptr);
    RestoreOpResult ra = serial.agent.RestoreOp(*sa, 30, /*verify=*/true);
    RestoreOpResult rb = parallel.agent.RestoreOp(*sb, 30, /*verify=*/true);
    EXPECT_TRUE(ra.verified);
    EXPECT_TRUE(rb.verified);
    EXPECT_EQ(ra.base_pages_read, rb.base_pages_read) << "victim " << i;
    EXPECT_EQ(ra.base_bytes_read, rb.base_bytes_read) << "victim " << i;
    EXPECT_EQ(ra.remote_reads, rb.remote_reads) << "victim " << i;
    EXPECT_EQ(ra.read_base_time, rb.read_base_time) << "victim " << i;
    EXPECT_EQ(ra.compute_time, rb.compute_time) << "victim " << i;
    EXPECT_EQ(ra.sandbox_restore_time, rb.sandbox_restore_time) << "victim " << i;
    EXPECT_EQ(ra.total_time, rb.total_time) << "victim " << i;
  }
}

TEST(DedupPipelineTest, CacheServesRepeatBaseReads) {
  Env env(4);
  Sandbox& base = env.WarmSandbox("Vanilla", 0);
  env.agent.DesignateBase(base);
  Sandbox& first = env.WarmSandbox("Vanilla", 1, 5);
  Sandbox& second = env.WarmSandbox("Vanilla", 1, 5);
  env.agent.DedupOp(first, 10);
  const uint64_t misses_after_first = env.fabric.stats().cache_misses;
  const uint64_t remote_after_first = env.fabric.stats().remote_reads;
  env.agent.DedupOp(second, 10);
  // The second sandbox dedups against the same hot base pages: its reads are
  // (almost all) cache hits, not new fabric traffic.
  EXPECT_GT(env.fabric.stats().cache_hits, 0u);
  EXPECT_LT(env.fabric.stats().cache_misses - misses_after_first, misses_after_first / 2 + 8);
  EXPECT_LT(env.fabric.stats().remote_reads - remote_after_first, remote_after_first / 2 + 8);
}

TEST(DedupPipelineTest, ThreadCountDoesNotChangePlatformObservables) {
  // A dedup + restore round trip must leave the same cluster state whatever
  // MEDES_THREADS resolves to (the agent reads it when num_threads = 0).
  Env wide(6);
  Sandbox& base = wide.WarmSandbox("FeatureGen", 0);
  wide.agent.DesignateBase(base);
  Sandbox& victim = wide.WarmSandbox("FeatureGen", 1, 1);
  DedupOpResult dedup = wide.agent.DedupOp(victim, 2);
  EXPECT_GT(dedup.pages_deduped, 0u);
  RestoreOpResult restore = wide.agent.RestoreOp(victim, 3, /*verify=*/true);
  EXPECT_TRUE(restore.verified);
  EXPECT_EQ(victim.state, SandboxState::kWarm);
  EXPECT_TRUE(victim.patches.empty());
  EXPECT_EQ(wide.registry.RefCount(base.id), 0);
}

}  // namespace
}  // namespace medes
