// Determinism of the parallel dedup/restore pipeline: every DedupOpResult
// counter, modelled duration, patch record, and patch byte must be
// bit-identical between the serial reference (num_threads = 1) and a wide
// pipeline, with the base-page cache enabled in both.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "dedupagent/dedup_agent.h"
#include "registry/distributed_registry.h"

namespace medes {
namespace {

ClusterOptions SmallCluster() {
  ClusterOptions opts;
  opts.num_nodes = 2;
  opts.node_memory_mb = 4096;
  opts.bytes_per_mb = 16384;
  return opts;
}

DedupAgentOptions AgentOpts(size_t num_threads) {
  DedupAgentOptions opts;
  opts.num_threads = num_threads;
  return opts;
}

// One self-contained environment: cluster, registry, cached fabric, agent.
struct Env {
  explicit Env(size_t num_threads)
      : cluster(SmallCluster()),
        fabric({.page_cache_capacity = 512},
               [this](const PageLocation& loc) { return cluster.ReadBasePage(loc); }),
        agent(cluster, registry, fabric, AgentOpts(num_threads)) {}

  Sandbox& WarmSandbox(const std::string& name, NodeId node, SimTime now = SimTime{}) {
    Sandbox& sb = cluster.Spawn(ProfileByName(name), node, now);
    cluster.MarkWarm(sb, now);
    return sb;
  }

  Cluster cluster;
  FingerprintRegistry registry;
  RdmaFabric fabric;
  DedupAgent agent;
};

void ExpectSameDedupResult(const DedupOpResult& a, const DedupOpResult& b,
                           const std::string& what) {
  EXPECT_EQ(a.pages_total, b.pages_total) << what;
  EXPECT_EQ(a.pages_deduped, b.pages_deduped) << what;
  EXPECT_EQ(a.pages_zero, b.pages_zero) << what;
  EXPECT_EQ(a.pages_unique, b.pages_unique) << what;
  EXPECT_EQ(a.patch_bytes, b.patch_bytes) << what;
  EXPECT_EQ(a.saved_bytes, b.saved_bytes) << what;
  EXPECT_EQ(a.same_function_pages, b.same_function_pages) << what;
  EXPECT_EQ(a.cross_function_pages, b.cross_function_pages) << what;
  EXPECT_EQ(a.checkpoint_time, b.checkpoint_time) << what;
  EXPECT_EQ(a.lookup_time, b.lookup_time) << what;
  EXPECT_EQ(a.patch_time, b.patch_time) << what;
  EXPECT_EQ(a.total_time, b.total_time) << what;
}

void ExpectSamePatches(const Sandbox& a, const Sandbox& b) {
  ASSERT_EQ(a.patches.size(), b.patches.size());
  for (size_t i = 0; i < a.patches.size(); ++i) {
    EXPECT_EQ(a.patches[i].page, b.patches[i].page) << "patch " << i;
    ASSERT_EQ(a.patches[i].bases.size(), b.patches[i].bases.size()) << "patch " << i;
    for (size_t j = 0; j < a.patches[i].bases.size(); ++j) {
      EXPECT_EQ(a.patches[i].bases[j], b.patches[i].bases[j]) << "patch " << i << " base " << j;
    }
  }
  ASSERT_TRUE(a.checkpoint.has_value());
  ASSERT_TRUE(b.checkpoint.has_value());
  const MemoryCheckpoint& ca = *a.checkpoint;
  const MemoryCheckpoint& cb = *b.checkpoint;
  ASSERT_EQ(ca.NumPages(), cb.NumPages());
  for (size_t page = 0; page < ca.NumPages(); ++page) {
    ASSERT_EQ(ca.SlotState(page), cb.SlotState(page)) << "page " << page;
    if (ca.SlotState(page) == PageSlotState::kPatched) {
      auto pa = ca.PatchData(page);
      auto pb = cb.PatchData(page);
      ASSERT_EQ(pa.size(), pb.size()) << "page " << page;
      EXPECT_TRUE(std::equal(pa.begin(), pa.end(), pb.begin()))
          << "patch bytes differ at page " << page;
    }
  }
}

TEST(DedupPipelineTest, ParallelDedupOpMatchesSerialPageForPage) {
  Env serial(1);
  Env parallel(8);
  ASSERT_EQ(serial.agent.NumThreads(), 1u);
  ASSERT_EQ(parallel.agent.NumThreads(), 8u);

  // Identical clusters (same seed, same operation sequence) in both envs:
  // a base per function plus victims on both nodes, cross- and same-function.
  for (Env* env : {&serial, &parallel}) {
    Sandbox& vanilla_base = env->WarmSandbox("Vanilla", NodeId{0});
    env->agent.DesignateBase(vanilla_base);
    Sandbox& linalg_base = env->WarmSandbox("LinAlg", NodeId{0});
    env->agent.DesignateBase(linalg_base);
  }

  const struct {
    const char* function;
    NodeId node;
  } victims[] = {{"Vanilla", NodeId{0}},
                 {"Vanilla", NodeId{1}},
                 {"LinAlg", NodeId{1}},
                 {"FeatureGen", NodeId{0}}};

  std::vector<SandboxId> serial_ids;
  std::vector<SandboxId> parallel_ids;
  for (const auto& v : victims) {
    Sandbox& sa = serial.WarmSandbox(v.function, v.node, SimTime{10});
    Sandbox& sb = parallel.WarmSandbox(v.function, v.node, SimTime{10});
    ASSERT_EQ(sa.id, sb.id) << "environments diverged";
    DedupOpResult ra = serial.agent.DedupOp(sa, SimTime{20});
    DedupOpResult rb = parallel.agent.DedupOp(sb, SimTime{20});
    ExpectSameDedupResult(ra, rb, v.function);
    ExpectSamePatches(sa, sb);
    EXPECT_GT(ra.pages_total, 0u);
    serial_ids.push_back(sa.id);
    parallel_ids.push_back(sb.id);
  }
  // The dedup path exercised the cache identically in both environments.
  EXPECT_EQ(serial.fabric.stats().cache_hits, parallel.fabric.stats().cache_hits);
  EXPECT_EQ(serial.fabric.stats().cache_misses, parallel.fabric.stats().cache_misses);

  // Restores: identical modelled costs and byte-exact reconstructions.
  for (size_t i = 0; i < serial_ids.size(); ++i) {
    Sandbox* sa = serial.cluster.Find(serial_ids[i]);
    Sandbox* sb = parallel.cluster.Find(parallel_ids[i]);
    ASSERT_NE(sa, nullptr);
    ASSERT_NE(sb, nullptr);
    RestoreOpResult ra = serial.agent.RestoreOp(*sa, SimTime{30}, /*verify=*/true);
    RestoreOpResult rb = parallel.agent.RestoreOp(*sb, SimTime{30}, /*verify=*/true);
    // Trained working sets defer some pages; drive the background phase to
    // completion so verification and refcounts cover the whole image.
    ASSERT_EQ(ra.background_pending, rb.background_pending) << "victim " << i;
    if (ra.background_pending) {
      BackgroundRestoreResult bga = serial.agent.CompleteBackgroundRestore(*sa, SimTime{31});
      BackgroundRestoreResult bgb = parallel.agent.CompleteBackgroundRestore(*sb, SimTime{31});
      EXPECT_TRUE(bga.verified);
      EXPECT_TRUE(bgb.verified);
      EXPECT_EQ(bga.base_pages_read, bgb.base_pages_read) << "victim " << i;
      EXPECT_EQ(bga.total_time, bgb.total_time) << "victim " << i;
    } else {
      EXPECT_TRUE(ra.verified);
      EXPECT_TRUE(rb.verified);
    }
    EXPECT_EQ(ra.base_pages_read, rb.base_pages_read) << "victim " << i;
    EXPECT_EQ(ra.base_bytes_read, rb.base_bytes_read) << "victim " << i;
    EXPECT_EQ(ra.remote_reads, rb.remote_reads) << "victim " << i;
    EXPECT_EQ(ra.read_base_time, rb.read_base_time) << "victim " << i;
    EXPECT_EQ(ra.compute_time, rb.compute_time) << "victim " << i;
    EXPECT_EQ(ra.sandbox_restore_time, rb.sandbox_restore_time) << "victim " << i;
    EXPECT_EQ(ra.critical_path_time, rb.critical_path_time) << "victim " << i;
    EXPECT_EQ(ra.fault_time, rb.fault_time) << "victim " << i;
    EXPECT_EQ(ra.total_time, rb.total_time) << "victim " << i;
  }
}

TEST(DedupPipelineTest, CacheServesRepeatBaseReads) {
  Env env(4);
  Sandbox& base = env.WarmSandbox("Vanilla", NodeId{0});
  env.agent.DesignateBase(base);
  Sandbox& first = env.WarmSandbox("Vanilla", NodeId{1}, SimTime{5});
  Sandbox& second = env.WarmSandbox("Vanilla", NodeId{1}, SimTime{5});
  env.agent.DedupOp(first, SimTime{10});
  const uint64_t misses_after_first = env.fabric.stats().cache_misses;
  const uint64_t remote_after_first = env.fabric.stats().remote_reads;
  env.agent.DedupOp(second, SimTime{10});
  // The second sandbox dedups against the same hot base pages: its reads are
  // (almost all) cache hits, not new fabric traffic.
  EXPECT_GT(env.fabric.stats().cache_hits, 0u);
  EXPECT_LT(env.fabric.stats().cache_misses - misses_after_first, misses_after_first / 2 + 8);
  EXPECT_LT(env.fabric.stats().remote_reads - remote_after_first, remote_after_first / 2 + 8);
}

TEST(DedupPipelineTest, ThreadCountDoesNotChangePlatformObservables) {
  // A dedup + restore round trip must leave the same cluster state whatever
  // MEDES_THREADS resolves to (the agent reads it when num_threads = 0).
  Env wide(6);
  Sandbox& base = wide.WarmSandbox("FeatureGen", NodeId{0});
  wide.agent.DesignateBase(base);
  Sandbox& victim = wide.WarmSandbox("FeatureGen", NodeId{1}, SimTime{1});
  DedupOpResult dedup = wide.agent.DedupOp(victim, SimTime{2});
  EXPECT_GT(dedup.pages_deduped, 0u);
  RestoreOpResult restore = wide.agent.RestoreOp(victim, SimTime{3}, /*verify=*/true);
  EXPECT_TRUE(restore.verified);
  EXPECT_EQ(victim.state, SandboxState::kWarm);
  EXPECT_TRUE(victim.patches.empty());
  EXPECT_EQ(wide.registry.RefCount(base.id), 0);
}

// ---- Lookup-cost regression (the registry model, not a flat constant) ----

TEST(DedupPipelineTest, CentralizedLookupTimeIsTheRegistryModel) {
  // Without a bound transport, the centralized registry charges exactly
  // lookup_per_page (default 80 us) per looked-up page — the same figure the
  // agent's removed `controller_lookup_per_page` constant used to model, so
  // standalone results are unchanged by the refactor.
  Env env(1);
  Sandbox& base = env.WarmSandbox("Vanilla", NodeId{0});
  env.agent.DesignateBase(base);
  Sandbox& victim = env.WarmSandbox("Vanilla", NodeId{1}, SimTime{1});
  DedupOpResult r = env.agent.DedupOp(victim, SimTime{2});
  const size_t resident = r.pages_total - r.pages_zero;
  ASSERT_GT(resident, 0u);
  const SimDuration expected{static_cast<int64_t>(
      static_cast<double>((RegistryOptions().lookup_per_page * static_cast<int64_t>(resident)).value()) *
      env.agent.ScaleFactor())};
  EXPECT_EQ(r.lookup_time, expected);
}

// A distributed environment sharing one transport between the registry and
// the fabric — what the platform wires up.
struct DistEnv {
  explicit DistEnv(size_t num_threads, Topology topology = {},
                   DistributedRegistryOptions dopts = {})
      : cluster(SmallCluster()),
        transport(std::make_shared<Transport>(std::move(topology))),
        registry(dopts, transport),
        fabric({.page_cache_capacity = 512},
               [this](const PageLocation& loc) { return cluster.ReadBasePage(loc); }, transport),
        agent(cluster, registry, fabric, AgentOpts(num_threads)) {}

  Sandbox& WarmSandbox(const std::string& name, NodeId node, SimTime now = SimTime{}) {
    Sandbox& sb = cluster.Spawn(ProfileByName(name), node, now);
    cluster.MarkWarm(sb, now);
    return sb;
  }

  Cluster cluster;
  std::shared_ptr<Transport> transport;
  DistributedRegistry registry;
  RdmaFabric fabric;
  DedupAgent agent;
};

TEST(DedupPipelineTest, DistributedLookupTimeMatchesShardWireModel) {
  // One shard over an infinite-bandwidth link makes the registry's modelled
  // cost recoverable from the transport's own counters: each lookup message
  // costs the link latency, plus per_key_lookup for each key it carried
  // (bytes / kRegistryWireBytesPerKey). The agent must report exactly that —
  // not a flat per-page constant.
  Topology topo;
  topo.remote = {.latency = SimDuration{7}, .bandwidth_gbps = 0.0};
  topo.local = {.latency = SimDuration{7}, .bandwidth_gbps = 0.0};  // node-independent cost
  DistributedRegistryOptions dopts;
  dopts.num_shards = 1;
  dopts.replication_factor = 1;
  DistEnv env(1, topo, dopts);

  Sandbox& base = env.WarmSandbox("Vanilla", NodeId{0});
  env.agent.DesignateBase(base);
  env.transport->ResetStats();  // isolate the dedup op's lookup messages

  Sandbox& victim = env.WarmSandbox("Vanilla", NodeId{1}, SimTime{1});
  DedupOpResult r = env.agent.DedupOp(victim, SimTime{2});

  const TransportStats net_stats = env.transport->stats();
  const MessageStats& lookups = net_stats.For(MessageType::kRegistryLookup);
  ASSERT_GT(lookups.messages, 0u);
  const SimDuration raw =
      SimDuration{7} * static_cast<int64_t>(lookups.messages) +
      DistributedRegistryOptions().per_key_lookup *
          static_cast<int64_t>(lookups.bytes / kRegistryWireBytesPerKey.value());
  EXPECT_EQ(r.lookup_time,
            SimDuration{static_cast<int64_t>(static_cast<double>(raw.value()) *
                                             env.agent.ScaleFactor())});
}

// ---- Transport determinism across thread counts --------------------------

TEST(DedupPipelineTest, TransportStatsIdenticalAcrossThreadCounts) {
  // A full dedup + restore workload against a distributed registry and a
  // shared transport: per-message-type counters, byte totals, and latency
  // histograms — and every modelled duration — must be bit-identical at
  // 1 thread, 4 threads, and whatever MEDES_THREADS/hardware resolves to.
  DistEnv one(1);
  DistEnv four(4);
  DistEnv hw(0);
  std::vector<DistEnv*> envs = {&one, &four, &hw};

  for (DistEnv* env : envs) {
    Sandbox& vanilla_base = env->WarmSandbox("Vanilla", NodeId{0});
    env->agent.DesignateBase(vanilla_base);
    Sandbox& linalg_base = env->WarmSandbox("LinAlg", NodeId{0});
    env->agent.DesignateBase(linalg_base);
  }

  const struct {
    const char* function;
    NodeId node;
  } victims[] = {{"Vanilla", NodeId{0}},
                 {"Vanilla", NodeId{1}},
                 {"LinAlg", NodeId{1}},
                 {"FeatureGen", NodeId{0}}};

  for (const auto& v : victims) {
    std::vector<DedupOpResult> results;
    std::vector<SandboxId> ids;
    for (DistEnv* env : envs) {
      Sandbox& sb = env->WarmSandbox(v.function, v.node, SimTime{10});
      results.push_back(env->agent.DedupOp(sb, SimTime{20}));
      ids.push_back(sb.id);
    }
    ExpectSameDedupResult(results[0], results[1], v.function);
    ExpectSameDedupResult(results[0], results[2], v.function);
    for (size_t e = 0; e < envs.size(); ++e) {
      Sandbox* sb = envs[e]->cluster.Find(ids[e]);
      ASSERT_NE(sb, nullptr);
      RestoreOpResult restore = envs[e]->agent.RestoreOp(*sb, SimTime{30}, /*verify=*/true);
      if (restore.background_pending) {
        EXPECT_TRUE(envs[e]->agent.CompleteBackgroundRestore(*sb, SimTime{31}).verified);
      } else {
        EXPECT_TRUE(restore.verified);
      }
    }
  }

  const TransportStats ref = one.transport->stats();
  EXPECT_GT(ref.For(MessageType::kRegistryLookup).messages, 0u);
  EXPECT_GT(ref.For(MessageType::kRegistryInsert).messages, 0u);
  EXPECT_GT(ref.For(MessageType::kBaseRead).messages, 0u);
  EXPECT_EQ(ref, four.transport->stats());
  EXPECT_EQ(ref, hw.transport->stats());
  EXPECT_EQ(ref.TotalLatency(), four.transport->stats().TotalLatency());
}

}  // namespace
}  // namespace medes
