#include "chunking/redundancy.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.h"

namespace medes {
namespace {

std::vector<uint8_t> RandomBytes(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> out(n);
  for (auto& b : out) {
    b = static_cast<uint8_t>(rng.Next());
  }
  return out;
}

TEST(RedundancyTest, IdenticalBuffersNearFull) {
  auto a = RandomBytes(64 * 1024, 1);
  RedundancyResult r = MeasureRedundancy(a, a);
  EXPECT_GT(r.Fraction(), 0.95);
  EXPECT_EQ(r.probed_chunks, r.matched_chunks);
}

TEST(RedundancyTest, UnrelatedBuffersNearZero) {
  auto a = RandomBytes(64 * 1024, 2);
  auto b = RandomBytes(64 * 1024, 3);
  RedundancyResult r = MeasureRedundancy(a, b);
  EXPECT_LT(r.Fraction(), 0.01);
}

TEST(RedundancyTest, HalfSharedRoughlyHalf) {
  auto shared = RandomBytes(64 * 1024, 4);
  auto a = shared;
  std::vector<uint8_t> b = shared;
  auto unique = RandomBytes(64 * 1024, 5);
  b.insert(b.end(), unique.begin(), unique.end());
  RedundancyResult r = MeasureRedundancy(a, b);
  EXPECT_NEAR(r.Fraction(), 0.5, 0.05);
}

TEST(RedundancyTest, StrideAlignedShiftStillFound) {
  // B = A shifted by 2K (the sampling stride): probes still line up with the
  // chunks indexed from A, so redundancy stays high.
  auto a = RandomBytes(64 * 1024, 6);
  std::vector<uint8_t> b(a.begin() + 128, a.end());
  RedundancyResult r = MeasureRedundancy(a, b);
  EXPECT_GT(r.Fraction(), 0.9);
}

TEST(RedundancyTest, OffStrideShiftIsMissed) {
  // A K-byte shift breaks the fixed-stride alignment the methodology relies
  // on — the measurement is a lower bound, as the paper's approach is too.
  auto a = RandomBytes(64 * 1024, 6);
  std::vector<uint8_t> b(a.begin() + 64, a.end());
  RedundancyResult r = MeasureRedundancy(a, b);
  EXPECT_LT(r.Fraction(), 0.1);
}

TEST(RedundancyTest, EmptyInputsSafe) {
  auto a = RandomBytes(1024, 7);
  EXPECT_EQ(MeasureRedundancy({}, a).Fraction(), 0.0);
  EXPECT_EQ(MeasureRedundancy(a, {}).Fraction(), 0.0);
}

TEST(RedundancyTest, RejectsZeroChunkSize) {
  auto a = RandomBytes(1024, 8);
  EXPECT_THROW(MeasureRedundancy(a, a, {.chunk_size = 0}), std::invalid_argument);
}

TEST(RedundancyTest, FractionNeverExceedsOne) {
  std::vector<uint8_t> zeros(32 * 1024, 0);  // pathological: all chunks match
  RedundancyResult r = MeasureRedundancy(zeros, zeros);
  EXPECT_LE(r.Fraction(), 1.0);
}

TEST(RedundancyTest, ScatteredMutationsReduceRedundancyMoreAtLargerChunks) {
  // The paper's Fig. 1a mechanism: pointer-like scattered edits poison large
  // chunks faster than small ones.
  auto a = RandomBytes(256 * 1024, 9);
  auto b = a;
  Rng rng(10);
  for (int i = 0; i < 400; ++i) {
    size_t off = rng.Below(b.size() - 8);
    uint64_t v = rng.Next();
    std::memcpy(b.data() + off, &v, 8);
  }
  double r64 = MeasureRedundancy(a, b, {.chunk_size = 64}).Fraction();
  double r1024 = MeasureRedundancy(a, b, {.chunk_size = 1024}).Fraction();
  EXPECT_GT(r64, r1024);
  EXPECT_GT(r64, 0.5);
}

TEST(RedundancyTest, AsymmetricByDesign) {
  // Redundancy of B w.r.t. A is a property of B's bytes.
  auto a = RandomBytes(64 * 1024, 11);
  std::vector<uint8_t> b = a;
  auto extra = RandomBytes(192 * 1024, 12);
  b.insert(b.end(), extra.begin(), extra.end());
  double b_in_a = MeasureRedundancy(a, b).Fraction();
  double a_in_b = MeasureRedundancy(b, a).Fraction();
  EXPECT_LT(b_in_a, 0.35);
  EXPECT_GT(a_in_b, 0.9);
}

}  // namespace
}  // namespace medes
