#include "platform/platform.h"

#include <gtest/gtest.h>

namespace medes {
namespace {

PlatformOptions FastOptions(PolicyKind policy) {
  PlatformOptions opts = MakePlatformOptions(policy);
  opts.cluster.num_nodes = 4;
  opts.cluster.node_memory_mb = 1024;
  opts.cluster.bytes_per_mb = 4096;  // small images: fast tests
  opts.medes.idle_period = 30 * kSecond;
  opts.medes.alpha = 8.0;  // loose enough that dedup pays off at small scale
  return opts;
}

std::vector<TraceEvent> ShortTrace(SimDuration duration = 5 * kMinute) {
  TraceOptions topts;
  topts.duration = duration;
  topts.rate_scale = 2.0;
  return GenerateTrace(DefaultAzurePatterns(), topts);
}

TEST(PlatformTest, FixedKeepAliveServesAllRequests) {
  auto trace = ShortTrace();
  ServerlessPlatform platform(FastOptions(PolicyKind::kFixedKeepAlive));
  RunMetrics m = platform.Run(trace);
  EXPECT_EQ(m.TotalRequests(), trace.size());
  EXPECT_GT(m.TotalColdStarts(), 0u);
  // No dedup machinery under the baseline.
  EXPECT_EQ(m.dedup_ops, 0u);
  EXPECT_EQ(m.restores, 0u);
  for (const auto& f : m.per_function) {
    EXPECT_EQ(f.dedup_starts, 0u);
  }
}

TEST(PlatformTest, RequestsAccountedConsistently) {
  auto trace = ShortTrace();
  ServerlessPlatform platform(FastOptions(PolicyKind::kFixedKeepAlive));
  RunMetrics m = platform.Run(trace);
  uint64_t by_type = 0;
  for (const auto& f : m.per_function) {
    by_type += f.TotalRequests();
  }
  EXPECT_EQ(by_type, m.TotalRequests());
  // Every request has a positive end-to-end latency >= its startup latency.
  for (const auto& r : m.requests) {
    EXPECT_GT(r.e2e, SimDuration{});
    EXPECT_GE(r.e2e, r.startup);
  }
}

TEST(PlatformTest, MedesPerformsDedupsAndRestores) {
  auto trace = ShortTrace(8 * kMinute);
  ServerlessPlatform platform(FastOptions(PolicyKind::kMedes));
  RunMetrics m = platform.Run(trace);
  EXPECT_GT(m.dedup_ops, 0u);
  EXPECT_GT(m.base_designations, 0u);
  EXPECT_EQ(m.TotalRequests(), trace.size());
  EXPECT_GT(m.registry.num_keys, 0u);
}

TEST(PlatformTest, MedesRestoresVerifyByteExact) {
  // End-to-end: restores reconstruct the exact original memory images.
  PlatformOptions opts = FastOptions(PolicyKind::kMedes);
  opts.verify_restores = true;
  opts.medes.idle_period = 10 * kSecond;  // dedup aggressively
  TraceOptions topts;
  topts.duration = 4 * kMinute;
  topts.rate_scale = 2.0;
  auto trace = GenerateTrace(PatternsForFunctions({"Vanilla", "LinAlg"}), topts);
  ServerlessPlatform platform(opts);
  RunMetrics m = platform.Run(trace);  // throws on any reconstruction mismatch
  EXPECT_EQ(m.TotalRequests(), trace.size());
}

TEST(PlatformTest, WarmStartsDominateHotFunctions) {
  auto trace = ShortTrace();
  ServerlessPlatform platform(FastOptions(PolicyKind::kFixedKeepAlive));
  RunMetrics m = platform.Run(trace);
  // Vanilla is a steady Poisson source: after the first cold start, requests
  // should overwhelmingly be warm.
  const auto& vanilla = m.per_function[0];
  ASSERT_GT(vanilla.TotalRequests(), 20u);
  EXPECT_GT(vanilla.warm_starts, vanilla.cold_starts);
}

TEST(PlatformTest, DeterministicAcrossRuns) {
  auto trace = ShortTrace();
  RunMetrics a = ServerlessPlatform(FastOptions(PolicyKind::kMedes)).Run(trace);
  RunMetrics b = ServerlessPlatform(FastOptions(PolicyKind::kMedes)).Run(trace);
  ASSERT_EQ(a.requests.size(), b.requests.size());
  for (size_t i = 0; i < a.requests.size(); ++i) {
    EXPECT_EQ(a.requests[i].e2e, b.requests[i].e2e) << "request " << i;
    EXPECT_EQ(a.requests[i].start, b.requests[i].start);
  }
  EXPECT_EQ(a.dedup_ops, b.dedup_ops);
  EXPECT_EQ(a.TotalColdStarts(), b.TotalColdStarts());
}

// Full workload-visible equality between two runs: every request record,
// the memory timeline, dedup/restore counters, and transport traffic.
void ExpectRunMetricsEqual(const RunMetrics& a, const RunMetrics& b) {
  ASSERT_EQ(a.requests.size(), b.requests.size());
  for (size_t i = 0; i < a.requests.size(); ++i) {
    ASSERT_EQ(a.requests[i].function, b.requests[i].function) << "request " << i;
    ASSERT_EQ(a.requests[i].arrival, b.requests[i].arrival) << "request " << i;
    ASSERT_EQ(a.requests[i].start, b.requests[i].start) << "request " << i;
    ASSERT_EQ(a.requests[i].startup, b.requests[i].startup) << "request " << i;
    ASSERT_EQ(a.requests[i].e2e, b.requests[i].e2e) << "request " << i;
  }
  ASSERT_EQ(a.memory_timeline.size(), b.memory_timeline.size());
  for (size_t i = 0; i < a.memory_timeline.size(); ++i) {
    EXPECT_EQ(a.memory_timeline[i].time, b.memory_timeline[i].time) << "sample " << i;
    EXPECT_EQ(a.memory_timeline[i].used_mb, b.memory_timeline[i].used_mb) << "sample " << i;
    EXPECT_EQ(a.memory_timeline[i].warm, b.memory_timeline[i].warm) << "sample " << i;
    EXPECT_EQ(a.memory_timeline[i].dedup, b.memory_timeline[i].dedup) << "sample " << i;
  }
  EXPECT_EQ(a.dedup_ops, b.dedup_ops);
  EXPECT_EQ(a.restores, b.restores);
  EXPECT_EQ(a.sandboxes_spawned, b.sandboxes_spawned);
  EXPECT_EQ(a.sandboxes_deduped, b.sandboxes_deduped);
  EXPECT_EQ(a.evictions, b.evictions);
  EXPECT_EQ(a.base_designations, b.base_designations);
  EXPECT_EQ(a.TotalColdStarts(), b.TotalColdStarts());
  ASSERT_EQ(a.per_function.size(), b.per_function.size());
  for (size_t f = 0; f < a.per_function.size(); ++f) {
    EXPECT_EQ(a.per_function[f].warm_starts, b.per_function[f].warm_starts) << "function " << f;
    EXPECT_EQ(a.per_function[f].dedup_starts, b.per_function[f].dedup_starts) << "function " << f;
    EXPECT_EQ(a.per_function[f].cold_starts, b.per_function[f].cold_starts) << "function " << f;
    EXPECT_EQ(a.per_function[f].total_saved_mb, b.per_function[f].total_saved_mb)
        << "function " << f;
  }
  for (size_t t = 0; t < a.transport.by_type.size(); ++t) {
    EXPECT_EQ(a.transport.by_type[t], b.transport.by_type[t]) << "message type " << t;
  }
}

// The calendar and heap engines must be workload-indistinguishable: a full
// Medes run produces byte-identical metrics under either.
TEST(PlatformTest, EventEnginesProduceIdenticalMetrics) {
  auto trace = ShortTrace(8 * kMinute);
  PlatformOptions cal_opts = FastOptions(PolicyKind::kMedes);
  cal_opts.sim.engine = SimEngine::kCalendar;
  PlatformOptions heap_opts = FastOptions(PolicyKind::kMedes);
  heap_opts.sim.engine = SimEngine::kHeap;
  RunMetrics cal = ServerlessPlatform(cal_opts).Run(trace);
  RunMetrics heap = ServerlessPlatform(heap_opts).Run(trace);
  ExpectRunMetricsEqual(cal, heap);
}

// Coalesced idle-expiry (one timer per deadline bucket) must make the same
// decisions as per-sandbox timers, decision for decision.
TEST(PlatformTest, CoalescedIdleExpiryMatchesPerSandboxTimers) {
  auto trace = ShortTrace(8 * kMinute);
  PlatformOptions on_opts = FastOptions(PolicyKind::kMedes);
  on_opts.coalesce_idle_expiry = true;
  PlatformOptions off_opts = FastOptions(PolicyKind::kMedes);
  off_opts.coalesce_idle_expiry = false;
  RunMetrics on = ServerlessPlatform(on_opts).Run(trace);
  RunMetrics off = ServerlessPlatform(off_opts).Run(trace);
  ExpectRunMetricsEqual(on, off);
}

// The streaming arrival feed (chained scheduling with reserved seqs) must be
// workload-invisible: identical metrics to bulk-scheduling the whole trace.
TEST(PlatformTest, StreamedArrivalFeedMatchesBulkFeed) {
  auto trace = ShortTrace(8 * kMinute);
  PlatformOptions stream_opts = FastOptions(PolicyKind::kMedes);
  stream_opts.stream_trace_arrivals = true;
  PlatformOptions bulk_opts = FastOptions(PolicyKind::kMedes);
  bulk_opts.stream_trace_arrivals = false;
  RunMetrics streamed = ServerlessPlatform(stream_opts).Run(trace);
  RunMetrics bulk = ServerlessPlatform(bulk_opts).Run(trace);
  ExpectRunMetricsEqual(streamed, bulk);
}

TEST(PlatformTest, RunTwiceRejected) {
  ServerlessPlatform platform(FastOptions(PolicyKind::kFixedKeepAlive));
  auto trace = ShortTrace(kMinute);
  platform.Run(trace);
  EXPECT_THROW(platform.Run(trace), std::logic_error);
}

TEST(PlatformTest, MemoryTimelineRespectsClusterLimit) {
  PlatformOptions opts = FastOptions(PolicyKind::kFixedKeepAlive);
  // Light load: running sandboxes alone never exceed the pool, so the limit
  // must hold strictly (overcommit is only legal when demand from *running*
  // sandboxes exceeds the pool).
  TraceOptions topts;
  topts.duration = 5 * kMinute;
  topts.rate_scale = 0.25;
  auto trace = GenerateTrace(DefaultAzurePatterns(), topts);
  ServerlessPlatform platform(opts);
  RunMetrics m = platform.Run(trace);
  ASSERT_FALSE(m.memory_timeline.empty());
  EXPECT_EQ(m.overcommit_events, 0u);
  const double limit = opts.cluster.node_memory_mb * opts.cluster.num_nodes;
  for (const auto& s : m.memory_timeline) {
    EXPECT_LE(s.used_mb, limit) << "at t=" << s.time;
  }
}

TEST(PlatformTest, CatalyzerEmulationShortensColdStarts) {
  auto trace = ShortTrace();
  PlatformOptions base = FastOptions(PolicyKind::kFixedKeepAlive);
  PlatformOptions cat = FastOptions(PolicyKind::kFixedKeepAlive);
  cat.emulate_catalyzer = true;
  RunMetrics m_base = ServerlessPlatform(base).Run(trace);
  RunMetrics m_cat = ServerlessPlatform(cat).Run(trace);
  // Cheaper starts free sandboxes sooner, so the catalyzer run never needs
  // more spawns than the baseline (modulo timing-shift noise).
  EXPECT_LE(m_cat.TotalColdStarts(), m_base.TotalColdStarts() + m_base.TotalColdStarts() / 10);
  double p_base = m_base.per_function[9].e2e_ms.Percentile(0.999);
  double p_cat = m_cat.per_function[9].e2e_ms.Percentile(0.999);
  EXPECT_LE(p_cat, p_base);
}

TEST(PlatformTest, AdaptivePolicyUsesLessMemoryThanFixed) {
  auto trace = ShortTrace(10 * kMinute);
  RunMetrics fixed = ServerlessPlatform(FastOptions(PolicyKind::kFixedKeepAlive)).Run(trace);
  RunMetrics adaptive =
      ServerlessPlatform(FastOptions(PolicyKind::kAdaptiveKeepAlive)).Run(trace);
  EXPECT_LT(adaptive.MeanMemoryMb(), fixed.MeanMemoryMb());
}

TEST(PlatformTest, ImprovementFactorsAlign) {
  auto trace = ShortTrace();
  RunMetrics medes = ServerlessPlatform(FastOptions(PolicyKind::kMedes)).Run(trace);
  RunMetrics fixed = ServerlessPlatform(FastOptions(PolicyKind::kFixedKeepAlive)).Run(trace);
  auto factors = ImprovementFactors(medes, fixed);
  EXPECT_EQ(factors.size(), trace.size());
  for (double f : factors) {
    EXPECT_GT(f, 0.0);
  }
}

TEST(PlatformTest, ImprovementFactorsRejectMismatchedTraces) {
  auto trace_a = ShortTrace(2 * kMinute);
  auto trace_b = ShortTrace(3 * kMinute);
  RunMetrics a = ServerlessPlatform(FastOptions(PolicyKind::kMedes)).Run(trace_a);
  RunMetrics b = ServerlessPlatform(FastOptions(PolicyKind::kFixedKeepAlive)).Run(trace_b);
  EXPECT_THROW(ImprovementFactors(a, b), std::invalid_argument);
}

TEST(PlatformTest, ToStringCoverage) {
  EXPECT_STREQ(ToString(PolicyKind::kMedes), "medes");
  EXPECT_STREQ(ToString(PolicyKind::kFixedKeepAlive), "fixed-keep-alive");
  EXPECT_STREQ(ToString(PolicyKind::kAdaptiveKeepAlive), "adaptive-keep-alive");
  EXPECT_STREQ(ToString(StartType::kWarm), "warm");
  EXPECT_STREQ(ToString(StartType::kDedup), "dedup");
  EXPECT_STREQ(ToString(StartType::kCold), "cold");
  EXPECT_STREQ(ToString(SandboxState::kWarm), "warm");
}

}  // namespace
}  // namespace medes
