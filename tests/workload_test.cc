#include "workload/trace.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace medes {
namespace {

TEST(WorkloadTest, TraceIsSortedAndBounded) {
  TraceOptions opts;
  opts.duration = 10 * kMinute;
  auto trace = GenerateTrace(DefaultAzurePatterns(), opts);
  ASSERT_FALSE(trace.empty());
  EXPECT_TRUE(std::is_sorted(trace.begin(), trace.end(),
                             [](const TraceEvent& a, const TraceEvent& b) {
                               return a.time < b.time;
                             }));
  for (const TraceEvent& e : trace) {
    EXPECT_GE(e.time, SimTime{});
    EXPECT_LT(e.time, SimTime{} + opts.duration);
    EXPECT_GE(e.function, 0);
    EXPECT_LT(e.function, 10);
  }
}

TEST(WorkloadTest, Deterministic) {
  TraceOptions opts;
  opts.duration = 5 * kMinute;
  auto a = GenerateTrace(DefaultAzurePatterns(), opts);
  auto b = GenerateTrace(DefaultAzurePatterns(), opts);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time, b[i].time);
    EXPECT_EQ(a[i].function, b[i].function);
  }
}

TEST(WorkloadTest, SeedChangesTrace) {
  TraceOptions a_opts, b_opts;
  a_opts.duration = b_opts.duration = 5 * kMinute;
  b_opts.seed = a_opts.seed + 1;
  auto a = GenerateTrace(DefaultAzurePatterns(), a_opts);
  auto b = GenerateTrace(DefaultAzurePatterns(), b_opts);
  EXPECT_NE(a.size(), b.size());
}

TEST(WorkloadTest, RateScaleIncreasesVolume) {
  TraceOptions small, large;
  small.duration = large.duration = 10 * kMinute;
  small.rate_scale = 1.0;
  large.rate_scale = 5.0;
  auto a = GenerateTrace(DefaultAzurePatterns(), small);
  auto b = GenerateTrace(DefaultAzurePatterns(), large);
  EXPECT_GT(b.size(), 3 * a.size());
}

TEST(WorkloadTest, PoissonRateRoughlyHonoured) {
  ArrivalPattern p;
  p.function = 0;
  p.kind = ArrivalKind::kPoisson;
  p.rate_per_s = 1.0;
  TraceOptions opts;
  opts.duration = kHour;
  opts.rate_scale = 1.0;
  auto trace = GenerateTrace({p}, opts);
  EXPECT_NEAR(static_cast<double>(trace.size()), 3600.0, 250.0);
}

TEST(WorkloadTest, PeriodicProducesRegularSpacing) {
  ArrivalPattern p;
  p.function = 1;
  p.kind = ArrivalKind::kPeriodic;
  p.rate_per_s = 1.0 / 60.0;
  p.jitter_fraction = 0.0;
  TraceOptions opts;
  opts.duration = kHour;
  opts.rate_scale = 1.0;
  auto trace = GenerateTrace({p}, opts);
  ASSERT_GE(trace.size(), 58u);
  for (size_t i = 1; i < trace.size(); ++i) {
    SimDuration gap = trace[i].time - trace[i - 1].time;
    EXPECT_NEAR(ToSeconds(gap), 60.0, 0.5);
  }
}

TEST(WorkloadTest, PeriodicScalingAddsStreams) {
  ArrivalPattern p;
  p.function = 1;
  p.kind = ArrivalKind::kPeriodic;
  p.rate_per_s = 1.0 / 60.0;
  TraceOptions one, five;
  one.duration = five.duration = kHour;
  one.rate_scale = 1.0;
  five.rate_scale = 5.0;
  auto a = GenerateTrace({p}, one);
  auto b = GenerateTrace({p}, five);
  EXPECT_NEAR(static_cast<double>(b.size()), 5.0 * static_cast<double>(a.size()),
              0.2 * static_cast<double>(b.size()));
}

TEST(WorkloadTest, BurstyHasQuietPeriods) {
  ArrivalPattern p;
  p.function = 2;
  p.kind = ArrivalKind::kBursty;
  p.rate_per_s = 1.0;
  p.mean_on = 30 * kSecond;
  p.mean_off = 300 * kSecond;
  TraceOptions opts;
  opts.duration = kHour;
  opts.rate_scale = 1.0;
  auto trace = GenerateTrace({p}, opts);
  ASSERT_GT(trace.size(), 5u);
  // There must exist gaps far longer than the ON-phase inter-arrival time.
  SimDuration max_gap;
  for (size_t i = 1; i < trace.size(); ++i) {
    max_gap = std::max(max_gap, trace[i].time - trace[i - 1].time);
  }
  EXPECT_GT(max_gap, kMinute);
}

// The k-way merge must produce exactly the globally-sorted sequence the old
// append-then-sort implementation emitted. TraceEvent is only (time,
// function), so sorting the merged output by that key is the full oracle:
// if the merge were wrong in any way, re-sorting would change the sequence.
TEST(WorkloadTest, MergeMatchesGlobalSortOracle) {
  TraceOptions opts;
  opts.duration = 20 * kMinute;
  opts.rate_scale = 5.0;
  auto trace = GenerateTrace(DefaultAzurePatterns(), opts);
  ASSERT_FALSE(trace.empty());
  auto sorted = trace;
  std::sort(sorted.begin(), sorted.end(), [](const TraceEvent& a, const TraceEvent& b) {
    return a.time != b.time ? a.time < b.time : a.function < b.function;
  });
  for (size_t i = 0; i < trace.size(); ++i) {
    ASSERT_EQ(trace[i].time, sorted[i].time) << "index " << i;
    ASSERT_EQ(trace[i].function, sorted[i].function) << "index " << i;
  }
}

// max_events keeps the *earliest* arrivals: the capped trace must be exactly
// the prefix of the uncapped one.
TEST(WorkloadTest, MaxEventsCapTruncatesEarliest) {
  TraceOptions opts;
  opts.duration = 10 * kMinute;
  auto full = GenerateTrace(DefaultAzurePatterns(), opts);
  ASSERT_GT(full.size(), 200u);

  opts.max_events = 200;
  auto capped = GenerateTrace(DefaultAzurePatterns(), opts);
  ASSERT_EQ(capped.size(), 200u);
  for (size_t i = 0; i < capped.size(); ++i) {
    EXPECT_EQ(capped[i].time, full[i].time);
    EXPECT_EQ(capped[i].function, full[i].function);
  }
}

TEST(WorkloadTest, PatternsForFunctionsSubset) {
  auto subset = PatternsForFunctions({"LinAlg", "FeatureGen", "ModelTrain"});
  ASSERT_EQ(subset.size(), 3u);
  EXPECT_EQ(subset[0].function, ProfileByName("LinAlg").id);
  EXPECT_EQ(subset[2].function, ProfileByName("ModelTrain").id);
  EXPECT_THROW(PatternsForFunctions({"Nope"}), std::out_of_range);
}

TEST(WorkloadTest, CountPerFunction) {
  TraceOptions opts;
  opts.duration = 10 * kMinute;
  auto trace = GenerateTrace(DefaultAzurePatterns(), opts);
  auto counts = CountPerFunction(trace);
  size_t total = 0;
  for (size_t c : counts) {
    total += c;
  }
  EXPECT_EQ(total, trace.size());
  EXPECT_EQ(counts.size(), 10u);
}

TEST(WorkloadTest, AllTenFunctionsAppearInLongTrace) {
  TraceOptions opts;
  opts.duration = kHour;
  auto counts = CountPerFunction(GenerateTrace(DefaultAzurePatterns(), opts));
  for (size_t f = 0; f < counts.size(); ++f) {
    EXPECT_GT(counts[f], 0u) << "function " << f;
  }
}

}  // namespace
}  // namespace medes
